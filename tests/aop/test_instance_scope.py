"""Instance-scoped deployments: dispatch, composition, rollback, scopes.

The scoped dispatch has two membership tiers (marker attribute in the
codegen tier, id-set in the generic tier), so the behavioural matrix here
runs under both ``REPRO_AOP_CODEGEN`` settings: advice fires only for
scoped receivers, unscoped receivers fall through to the previous member,
class-wide deployments compose over instance dispatch in deployment
order, and undeploy/rollback restore classes *and* marker state exactly.
"""

import gc

import pytest

from repro.aop import (
    Aspect,
    InstanceScope,
    WeaverRuntime,
    WeavingError,
    around,
    before,
    field_set,
    introduce,
)


@pytest.fixture(params=["codegen", "generic"])
def tier(request, monkeypatch):
    monkeypatch.setenv("REPRO_AOP_CODEGEN", "1" if request.param == "codegen" else "0")
    return request.param


def fresh_node():
    class Node:
        def render(self, suffix=""):
            return "base" + suffix

        def leaf(self):
            return "leaf"

    return Node


def tag(tag_name):
    class TagAspect(Aspect):
        @around("execution(Node.render)")
        def wrap(self, jp):
            return f"{tag_name}({jp.proceed()})"

    TagAspect.__name__ = f"Tag{tag_name}"
    return TagAspect()


class TestScopedDispatch:
    def test_advice_fires_only_for_scoped_instances(self, tier):
        Node = fresh_node()
        scoped, unscoped = Node(), Node()
        runtime = WeaverRuntime()
        deployment = runtime.deploy(tag("A"), [Node], instances=[scoped])
        try:
            assert scoped.render() == "A(base)"
            assert unscoped.render() == "base"
            assert Node().render() == "base"
        finally:
            runtime.undeploy(deployment)
        assert scoped.render() == "base"

    def test_two_scopes_coexist_on_one_class(self, tier):
        Node = fresh_node()
        a, b, c = Node(), Node(), Node()
        runtime = WeaverRuntime()
        da = runtime.deploy(tag("A"), [Node], instances=[a])
        db = runtime.deploy(tag("B"), [Node], instances=[b])
        try:
            assert a.render() == "A(base)"
            assert b.render() == "B(base)"
            assert c.render() == "base"
        finally:
            runtime.undeploy(db)
            runtime.undeploy(da)

    def test_signature_is_forwarded_exactly(self, tier):
        Node = fresh_node()
        scoped, unscoped = Node(), Node()
        runtime = WeaverRuntime()
        deployment = runtime.deploy(tag("A"), [Node], instances=[scoped])
        try:
            assert scoped.render("!") == "A(base!)"
            assert scoped.render(suffix="?") == "A(base?)"
            assert unscoped.render("!") == "base!"
            assert unscoped.render(suffix="?") == "base?"
        finally:
            runtime.undeploy(deployment)

    def test_before_advice_sees_scoped_args(self, tier):
        Node = fresh_node()
        scoped = Node()
        seen = []

        class Watcher(Aspect):
            @before("execution(Node.render)")
            def note(self, jp):
                seen.append(jp.args)

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Watcher(), [Node], instances=[scoped])
        try:
            scoped.render("!")
            assert seen == [("!",)]
        finally:
            runtime.undeploy(deployment)

    def test_exotic_signatures_fall_back_but_still_scope(self, tier):
        class Node:
            def render(self, *args, **kwargs):
                return ("base", args, tuple(sorted(kwargs)))

        scoped, unscoped = Node(), Node()

        class Wrap(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                return ("wrapped", jp.proceed())

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Wrap(), [Node], instances=[scoped])
        try:
            assert scoped.render(1, x=2) == ("wrapped", ("base", (1,), ("x",)))
            assert unscoped.render(1, x=2) == ("base", (1,), ("x",))
        finally:
            runtime.undeploy(deployment)

    def test_parameter_named_len_falls_back_safely(self, tier):
        """Template-colliding parameter names must not be rendered.

        The generated release block calls ``len``; a parameter of that
        name would shadow the builtin inside an exact-signature ``_run``,
        so the renderer must fall back to the packing shape.
        """

        class Node:
            def render(self, len=0):
                return len

        scoped, unscoped = Node(), Node()

        class Wrap(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                return ("W", jp.proceed())

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Wrap(), [Node], instances=[scoped])
        try:
            assert scoped.render(5) == ("W", 5)
            assert unscoped.render(5) == 5
        finally:
            runtime.undeploy(deployment)

    def test_copied_member_follows_its_stamp(self, tier):
        """copy.copy of a member copies the stamp; discard strips it.

        Marker dispatch follows the instance stamp, so the copy is
        advised consistently — including under a live cflow watcher,
        whose slow path re-tests membership by the same rule — until
        ``scope.discard`` removes the stray stamp.
        """
        import copy

        Node = fresh_node()
        member = Node()
        scope = InstanceScope([member])
        runtime = WeaverRuntime()
        deployment = runtime.deploy(tag("A"), [Node], instances=scope)
        marker_tier = any(k.startswith("_aop_scope_") for k in Node.__dict__)
        try:
            clone = copy.copy(member)
            if marker_tier:
                assert clone.render() == "A(base)"

                class Watch(Aspect):
                    @before("execution(Node.render) && cflow(execution(Node.render))")
                    def note(self, jp):
                        pass

                watcher_dep = runtime.deploy(Watch(), [Node])
                try:
                    # Slow path agrees with the fast path on the stamp.
                    assert clone.render() == "A(base)"
                finally:
                    runtime.undeploy(watcher_dep)
                scope.discard(clone)
                assert clone.render() == "base"
                assert member.render() == "A(base)"
            else:
                # Id dispatch: the copy was never a member.
                assert clone.render() == "base"
        finally:
            runtime.undeploy(deployment)

    def test_slots_instances_use_id_dispatch(self, tier):
        class Node:
            __slots__ = ()

            def render(self):
                return "base"

        scoped, unscoped = Node(), Node()

        class Wrap(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                return f"W({jp.proceed()})"

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Wrap(), [Node], instances=[scoped])
        try:
            assert scoped.render() == "W(base)"
            assert unscoped.render() == "base"
            # No marker default leaked onto the class.
            assert not any(k.startswith("_aop_scope_") for k in Node.__dict__)
        finally:
            runtime.undeploy(deployment)


class TestComposition:
    def test_class_chain_wraps_instance_chain(self, tier):
        Node = fresh_node()
        scoped, unscoped = Node(), Node()
        runtime = WeaverRuntime()
        di = runtime.deploy(tag("I"), [Node], instances=[scoped])
        dc = runtime.deploy(tag("C"), [Node])
        try:
            assert scoped.render() == "C(I(base))"
            assert unscoped.render() == "C(base)"
        finally:
            runtime.undeploy(dc)
            runtime.undeploy(di)
        assert scoped.render() == "base"

    def test_instance_dispatch_over_class_chain(self, tier):
        Node = fresh_node()
        scoped, unscoped = Node(), Node()
        runtime = WeaverRuntime()
        dc = runtime.deploy(tag("C"), [Node])
        di = runtime.deploy(tag("I"), [Node], instances=[scoped])
        try:
            # The instance dispatch's "original" is the class-wide
            # wrapper, so unscoped receivers still get the class chain.
            assert scoped.render() == "I(C(base))"
            assert unscoped.render() == "C(base)"
        finally:
            runtime.undeploy(di)
            runtime.undeploy(dc)

    def test_transaction_rollback_restores_everything(self, tier):
        Node = fresh_node()
        scoped = Node()
        runtime = WeaverRuntime()
        with pytest.raises(RuntimeError, match="boom"):
            with runtime.transaction([Node]) as tx:
                tx.add(tag("A"), instances=[scoped])
                assert scoped.render() == "A(base)"
                raise RuntimeError("boom")
        assert scoped.render() == "base"
        assert not hasattr(Node.render, "__woven__")
        assert not any(k.startswith("_aop_scope_") for k in Node.__dict__)
        assert not any(k.startswith("_aop_scope_") for k in vars(scoped))

    def test_partial_undeploy_reweaves_scoped_survivors(self, tier):
        Node = fresh_node()
        a, b = Node(), Node()
        runtime = WeaverRuntime()
        tx = runtime.transaction([Node])
        da = tx.add(tag("A"), instances=[a])
        tx.add(tag("B"), instances=[b])
        tx.commit()
        tx.undeploy([da])
        try:
            assert a.render() == "base"
            assert b.render() == "B(base)"
        finally:
            tx.undeploy()
        assert b.render() == "base"

    def test_introductions_refuse_instance_scoping(self, tier):
        Node = fresh_node()

        class WithIntro(Aspect):
            def introductions(self):
                return [introduce("Node", "grafted", lambda self: True)]

        runtime = WeaverRuntime()
        with pytest.raises(WeavingError, match="cannot be instance-scoped"):
            runtime.deploy(WithIntro(), [Node], instances=[Node()])
        assert not hasattr(Node, "grafted")


class TestCflowParity:
    def test_unscoped_calls_stay_cflow_observable(self, tier):
        """A cflow residue in another deployment sees unscoped calls too.

        The shadow executes whether or not the receiver is scoped, so —
        exactly like a class-wide woven shadow — the dispatch must push
        an observable frame while any watcher is live in the runtime.
        """

        class Other:
            def m(self):
                return "m"

        other = Other()

        class Node:
            def render(self):
                return other.m()

        fired = []

        class CflowWatch(Aspect):
            @before("execution(Other.m) && cflow(execution(Node.render))")
            def note(self, jp):
                fired.append(jp.signature)

        scoped, unscoped = Node(), Node()
        runtime = WeaverRuntime()
        d_scope = runtime.deploy(tag("A"), [Node], instances=[scoped])
        # Deployed over [Other] only: no tracking wrapper lands on
        # Node.render, so the frames can only come from the scoped
        # deployment's dispatch wrapper.
        d_cflow = runtime.deploy(CflowWatch(), [Other])
        try:
            other.m()
            assert fired == []  # outside any render extent
            unscoped.render()
            assert fired == ["Other.m"]
            scoped.render()
            assert fired == ["Other.m", "Other.m"]
        finally:
            runtime.undeploy(d_cflow)
            runtime.undeploy(d_scope)

    def test_scope_deployed_under_live_watchers(self, tier):
        """Reverse order: the watcher is live before the scope weaves."""

        class Other:
            def m(self):
                return "m"

        other = Other()

        class Node:
            def render(self):
                return other.m()

        fired = []

        class CflowWatch(Aspect):
            @before("execution(Other.m) && cflow(execution(Node.render))")
            def note(self, jp):
                fired.append(jp.signature)

        scoped, unscoped = Node(), Node()
        runtime = WeaverRuntime()
        d_cflow = runtime.deploy(CflowWatch(), [Other])
        d_scope = runtime.deploy(tag("A"), [Node], instances=[scoped])
        try:
            unscoped.render()
            scoped.render()
            assert fired == ["Other.m", "Other.m"]
        finally:
            runtime.undeploy(d_scope)
            runtime.undeploy(d_cflow)
        # Watchers gone: the passthrough is fast again and frame-free.
        fired.clear()
        unscoped.render()
        assert fired == []

    def test_scoped_codegen_joinpoints_canonicalize_args(self, monkeypatch):
        """Exact-signature dispatch presents calls in positional form.

        The generated scoped wrapper compiles the shadow's signature, so
        the join point observes bound positional arguments (keywords
        bound, defaults filled) and an empty ``kwargs`` — the AspectJ-like
        normalization documented on ``_scoped_static_source``.
        """
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")
        Node = fresh_node()
        scoped = Node()
        seen = []

        class Watch(Aspect):
            @before("execution(Node.render)")
            def note(self, jp):
                seen.append((jp.args, dict(jp.kwargs)))

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Watch(), [Node], instances=[scoped])
        try:
            scoped.render(suffix="!")
            scoped.render()
            assert seen == [(("!",), {}), (("",), {})]
        finally:
            runtime.undeploy(deployment)


class TestScopeObject:
    def test_scope_membership_is_live(self, tier):
        Node = fresh_node()
        a, b = Node(), Node()
        scope = InstanceScope([a])
        runtime = WeaverRuntime()
        deployment = runtime.deploy(tag("A"), [Node], instances=scope)
        try:
            assert a.render() == "A(base)"
            assert b.render() == "base"
            scope.add(b)
            assert b.render() == "A(base)"
            scope.discard(a)
            assert a.render() == "base"
        finally:
            runtime.undeploy(deployment)

    def test_dead_instances_leave_the_scope(self, tier):
        Node = fresh_node()
        a = Node()
        scope = InstanceScope([a])
        runtime = WeaverRuntime()
        deployment = runtime.deploy(tag("A"), [Node], instances=scope)
        try:
            assert len(scope) == 1 and a in scope
            del a
            gc.collect()
            assert len(scope) == 0
            assert scope.instances() == []
            assert Node().render() == "base"
        finally:
            runtime.undeploy(deployment)

    def test_markers_vanish_after_undeploy(self):
        # Codegen tier only: marker dispatch is its optimization.
        Node = fresh_node()
        scoped = Node()
        runtime = WeaverRuntime()
        deployment = runtime.deploy(tag("A"), [Node], instances=[scoped])
        if getattr(Node.__dict__["render"], "__codegen_source__", None) is None:
            runtime.undeploy(deployment)
            pytest.skip("codegen disabled for this run")
        assert any(k.startswith("_aop_scope_") for k in Node.__dict__)
        assert any(k.startswith("_aop_scope_") for k in vars(scoped))
        runtime.undeploy(deployment)
        assert not any(k.startswith("_aop_scope_") for k in Node.__dict__)
        assert not any(k.startswith("_aop_scope_") for k in vars(scoped))

    def test_pinned_members_are_scoped_too(self, tier):
        """__dict__ without __weakref__: pinned strongly, still dispatched.

        Such instances cannot be weakly referenced but can carry the
        marker, so marker acquisition/release must cover the pinned set
        as well as the weakref set.
        """

        class Node:
            __slots__ = ("__dict__",)

            def render(self):
                return "base"

        scoped, unscoped = Node(), Node()

        class Wrap(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                return f"W({jp.proceed()})"

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Wrap(), [Node], instances=[scoped])
        try:
            assert scoped.render() == "W(base)"
            assert unscoped.render() == "base"
        finally:
            runtime.undeploy(deployment)
        assert scoped.render() == "base"
        assert not any(k.startswith("_aop_scope_") for k in vars(scoped))

    def test_scoped_fields_gate_on_membership(self, tier):
        class Node:
            def __init__(self):
                self.level = 0

        scoped, unscoped = Node(), Node()
        writes = []

        class FieldWatch(Aspect):
            @before(field_set("Node.level"))
            def on_set(self, jp):
                writes.append(jp.value)

        runtime = WeaverRuntime()
        deployment = runtime.deploy(
            FieldWatch(), [Node], fields=["level"], instances=[scoped]
        )
        try:
            scoped.level = 1
            unscoped.level = 2
            assert writes == [1]
            assert scoped.level == 1 and unscoped.level == 2
        finally:
            runtime.undeploy(deployment)


class TestIntrospection:
    def test_sites_and_stats_report_scopes(self, tier):
        Node = fresh_node()
        scoped = Node()
        runtime = WeaverRuntime()
        scoped_dep = runtime.deploy(tag("A"), [Node], instances=[scoped])
        class_dep = runtime.deploy(tag("C"), [Node])
        try:
            sites = runtime.woven_sites()
            assert {s.scope_instances for s in sites} == {1, None}
            assert all(not s.member.startswith("_aop_scope_") for s in sites)
            assert runtime.deployment_stats(scoped_dep).scope_instances == 1
            assert runtime.deployment_stats(class_dep).scope_instances is None
            assert runtime.stats()["instance_scoped"] == 1
            assert scoped_dep.woven_signatures() == ["Node.render"]
        finally:
            runtime.undeploy(class_dep)
            runtime.undeploy(scoped_dep)
