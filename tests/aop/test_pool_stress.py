"""JoinPointPool under reentrancy and thread pressure.

The ROADMAP's free-threaded audit rung: the pool's free list relies on
``list.pop``/``list.append`` atomicity (GIL today, per-op locks on
no-GIL builds), so these tests hammer acquire/release from many threads —
directly and through a woven shadow whose generated wrapper shares the
pool — and assert the invariants the weaver depends on: no join point is
ever handed to two holders at once, released instances are scrubbed, and
the free list never grows past its cap.
"""

import threading

import pytest

from repro.aop import (
    Aspect,
    JoinPointKind,
    JoinPointPool,
    WeaverRuntime,
    around,
)


class TestPoolReentrancy:
    def test_nested_acquires_never_share_an_instance(self):
        pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, "render")
        outer = pool.acquire(object(), (), {})
        inner = pool.acquire(object(), (), {})
        assert outer is not inner
        pool.release(inner)
        pool.release(outer)
        # Deep nesting allocates past the free list and releases cleanly.
        held = [pool.acquire(object(), (i,), {}) for i in range(32)]
        assert len(set(map(id, held))) == 32
        for jp in reversed(held):
            pool.release(jp)
        assert len(pool.free) <= 8

    def test_reentrant_advice_through_a_woven_shadow(self):
        class Node:
            def render(self, depth):
                return depth

        class Recurse(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                (depth,) = jp.args
                if depth > 0:
                    # Re-enter the same shadow while this call's join
                    # point is still checked out of the pool.
                    assert jp.target.render(depth - 1) == depth - 1
                return jp.proceed()

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Recurse(), [Node])
        try:
            assert Node().render(12) == 12
        finally:
            runtime.undeploy(deployment)


class TestPoolThreadStress:
    @pytest.mark.parametrize("threads", [4, 8])
    def test_direct_acquire_release_storm(self, threads):
        pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, "render")
        iterations = 2_000
        errors: list[BaseException] = []
        start = threading.Barrier(threads)

        def worker(worker_id: int) -> None:
            try:
                token = object()
                start.wait()
                for i in range(iterations):
                    jp = pool.acquire(token, (worker_id, i), {"w": worker_id})
                    # The instance is exclusively ours until release: the
                    # slots must hold exactly what acquire wrote.
                    assert jp.target is token
                    assert jp.args == (worker_id, i)
                    assert jp.kwargs == {"w": worker_id}
                    jp.result = worker_id
                    pool.release(jp)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pack = [threading.Thread(target=worker, args=(n,)) for n in range(threads)]
        for thread in pack:
            thread.start()
        for thread in pack:
            thread.join()
        assert errors == []
        assert len(pool.free) <= 8
        for jp in pool.free:
            # Everything parked on the free list is scrubbed.
            assert jp.target is None and jp.cls is None
            assert jp.args == () and jp.kwargs is None
            assert jp.value is None and jp.result is None

    def test_woven_shadow_storm_shares_one_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")

        class Node:
            def render(self, a, b):
                return (a, b)

        class Echo(Aspect):
            @around("execution(Node.render)")
            def wrap(self, jp):
                return jp.proceed()

        runtime = WeaverRuntime()
        deployment = runtime.deploy(Echo(), [Node])
        pool = Node.__dict__["render"].__joinpoint_pool__
        errors: list[BaseException] = []
        start = threading.Barrier(6)

        def worker(worker_id: int) -> None:
            try:
                node = Node()
                start.wait()
                for i in range(1_500):
                    assert node.render(worker_id, i) == (worker_id, i)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pack = [threading.Thread(target=worker, args=(n,)) for n in range(6)]
        try:
            for thread in pack:
                thread.start()
            for thread in pack:
                thread.join()
        finally:
            runtime.undeploy(deployment)
        assert errors == []
        assert len(pool.free) <= 8
