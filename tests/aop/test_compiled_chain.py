"""Compiled advice chains: parity with the legacy per-call path.

The weaver now partitions advice by kind and compiles the around-nesting
once at deployment time (``CompiledChain``), with a static fast path that
skips join point stack bookkeeping when no pointcut has a runtime residue.
These tests pin the semantics: everything observable — ordering, exception
paths, proceed() argument rewriting, undeploy — must be identical to the
old re-partition-on-every-call implementation, reproduced here verbatim as
the reference.

The whole matrix runs three times: with code-generated per-shadow
wrappers (the default), with ``REPRO_AOP_CODEGEN=0`` (the generic
compiled-chain wrappers), and — on CPython 3.12+ — with
``REPRO_AOP_MONITOR=1``, where eligible observation-only advice
dispatches from ``sys.monitoring`` events with no wrapper frame at all
while everything else (around/throwing, dynamic residue) composes with
it through codegen wrappers on the same class.  All three tiers must be
behaviorally indistinguishable — including ordering, exception paths,
cflow watcher and undeploy-snapshot semantics.
"""

import sys

import pytest

from repro.aop import (
    Advice,
    AdviceKind,
    Aspect,
    CompiledChain,
    JoinPoint,
    JoinPointKind,
    ProceedingJoinPoint,
    Weaver,
    after,
    after_returning,
    after_throwing,
    around,
    before,
    current_stack,
    deployed,
    execution,
    run_advice_chain,
)
from repro.aop.weaver import shadow_index


MONITOR_TIER = pytest.param(
    "monitor",
    marks=pytest.mark.skipif(
        sys.version_info < (3, 12),
        reason="monitor tier needs sys.monitoring (CPython 3.12+)",
    ),
)


@pytest.fixture(autouse=True, params=["codegen", "generic", MONITOR_TIER])
def _wrapper_tier(request, monkeypatch):
    """Run every test against all three deployment tiers (checked per deploy).

    The wrapper-tier params pin ``REPRO_AOP_MONITOR=0`` explicitly — the
    knob is auto-on under 3.12+, and these tests must exercise the
    wrappers they name.  The monitor param keeps codegen on, so
    monitor-ineligible advice in the same test composes through codegen
    wrappers exactly as it would in production.
    """
    monkeypatch.setenv("REPRO_AOP_CODEGEN", "0" if request.param == "generic" else "1")
    monkeypatch.setenv("REPRO_AOP_MONITOR", "1" if request.param == "monitor" else "0")
    return request.param


# -- the pre-refactor algorithm, kept as the reference ------------------------


def _legacy_wrap_around(advice, jp, inner):
    def runner(*args, **kwargs):
        pjp = ProceedingJoinPoint(jp, inner)
        pjp.args = args or jp.args      # the falsy-args bug, preserved:
        pjp.kwargs = kwargs or jp.kwargs  # the reference for *non-empty* calls
        return advice.invoke(pjp)

    return runner


def legacy_run_advice_chain(advice, jp, proceed):
    """The seed implementation: re-partitions advice on every call."""
    befores = [a for a in advice if a.kind is AdviceKind.BEFORE]
    arounds = [a for a in advice if a.kind is AdviceKind.AROUND]
    returnings = [a for a in advice if a.kind is AdviceKind.AFTER_RETURNING]
    throwings = [a for a in advice if a.kind is AdviceKind.AFTER_THROWING]
    finallys = [a for a in advice if a.kind is AdviceKind.AFTER]

    chain = proceed
    for around_advice in reversed(arounds):
        chain = _legacy_wrap_around(around_advice, jp, chain)

    for item in befores:
        item.invoke(jp)
    try:
        result = chain(*jp.args, **jp.kwargs)
    except Exception as exc:
        jp.result = exc
        for item in reversed(throwings):
            item.invoke(jp)
        for item in reversed(finallys):
            item.invoke(jp)
        raise
    jp.result = result
    for item in reversed(returnings):
        item.invoke(jp)
    for item in reversed(finallys):
        item.invoke(jp)
    return result


def make_advice(kind, tag, log, *, order=0, proceed_args=None):
    """One advice of *kind* that logs enter/exit (arounds) or its tag."""
    if kind is AdviceKind.AROUND:

        def body(jp):
            log.append(f"enter:{tag}")
            try:
                if proceed_args is None:
                    return jp.proceed()
                return jp.proceed(*proceed_args)
            finally:
                log.append(f"exit:{tag}")

    else:

        def body(jp):
            log.append(tag)

    return Advice(kind=kind, pointcut=execution("*.*"), function=body, order=order)


ADVICE_MIXES = [
    [AdviceKind.BEFORE, AdviceKind.BEFORE, AdviceKind.AFTER],
    [AdviceKind.AROUND, AdviceKind.AROUND],
    [AdviceKind.BEFORE, AdviceKind.AROUND, AdviceKind.AFTER_RETURNING],
    [
        AdviceKind.BEFORE,
        AdviceKind.AROUND,
        AdviceKind.AFTER_THROWING,
        AdviceKind.AFTER,
        AdviceKind.AROUND,
        AdviceKind.AFTER_RETURNING,
    ],
    [AdviceKind.AFTER_THROWING, AdviceKind.AFTER],
]


def run_both(kinds, fail):
    """Run one mix through the legacy and the compiled chain; return logs."""
    logs = []
    results = []
    for runner in (legacy_run_advice_chain, lambda a, jp, p: CompiledChain(a)(jp, p)):
        log = []
        advice = [
            make_advice(kind, f"{kind.value}{i}", log)
            for i, kind in enumerate(kinds)
        ]
        jp = JoinPoint(JoinPointKind.METHOD_EXECUTION, object(), object, "op", (3,))

        def target(x):
            log.append("target")
            if fail:
                raise ValueError("boom")
            return x * 2

        if fail:
            with pytest.raises(ValueError):
                runner(advice, jp, target)
            results.append("raised")
        else:
            results.append(runner(advice, jp, target))
        logs.append(log)
    return logs, results


class TestLegacyParity:
    @pytest.mark.parametrize("kinds", ADVICE_MIXES)
    def test_success_path_identical(self, kinds):
        logs, results = run_both(kinds, fail=False)
        assert logs[0] == logs[1]
        assert results[0] == results[1] == 6

    @pytest.mark.parametrize("kinds", ADVICE_MIXES)
    def test_exception_path_identical(self, kinds):
        logs, results = run_both(kinds, fail=True)
        assert logs[0] == logs[1]
        assert results == ["raised", "raised"]

    def test_run_advice_chain_is_the_compiled_chain(self):
        """The legacy entry point now routes through CompiledChain."""
        log = []
        advice = [make_advice(AdviceKind.BEFORE, "b", log)]
        jp = JoinPoint(JoinPointKind.METHOD_EXECUTION, object(), object, "op")
        assert run_advice_chain(advice, jp, lambda: 42) == 42
        assert log == ["b"]


class TestCompiledOrdering:
    """Ordering invariants asserted directly against a deployed weave."""

    def test_before_outermost_first_after_innermost_first(self):
        log = []

        class Target:
            def op(self):
                log.append("target")

        class A(Aspect):
            @before("execution(Target.op)", order=1)
            def b1(self, jp):
                log.append("before:outer")

            @before("execution(Target.op)", order=2)
            def b2(self, jp):
                log.append("before:inner")

            @after("execution(Target.op)", order=1)
            def a1(self, jp):
                log.append("after:outer")

            @after("execution(Target.op)", order=2)
            def a2(self, jp):
                log.append("after:inner")

        with deployed(A(), [Target]):
            Target().op()
        assert log == [
            "before:outer",
            "before:inner",
            "target",
            "after:inner",
            "after:outer",
        ]

    def test_around_nesting_outermost_wraps(self):
        log = []

        class Target:
            def op(self):
                log.append("target")

        class A(Aspect):
            @around("execution(Target.op)", order=1)
            def outer(self, jp):
                log.append("enter:outer")
                try:
                    return jp.proceed()
                finally:
                    log.append("exit:outer")

            @around("execution(Target.op)", order=2)
            def inner(self, jp):
                log.append("enter:inner")
                try:
                    return jp.proceed()
                finally:
                    log.append("exit:inner")

        with deployed(A(), [Target]):
            Target().op()
        assert log == [
            "enter:outer",
            "enter:inner",
            "target",
            "exit:inner",
            "exit:outer",
        ]

    def test_exception_path_throwing_then_finally(self):
        log = []

        class Target:
            def op(self):
                raise RuntimeError("boom")

        class A(Aspect):
            @after_returning("execution(Target.op)")
            def ret(self, jp):
                log.append("returning")

            @after_throwing("execution(Target.op)")
            def threw(self, jp):
                log.append(f"throwing:{type(jp.result).__name__}")

            @after("execution(Target.op)")
            def fin(self, jp):
                log.append("finally")

        with deployed(A(), [Target]):
            with pytest.raises(RuntimeError):
                Target().op()
        assert log == ["throwing:RuntimeError", "finally"]

    def test_undeploy_restores_original_function(self):
        class Target:
            def op(self):
                return "plain"

        original = Target.__dict__["op"]

        class A(Aspect):
            @around("execution(Target.op)")
            def wrap(self, jp):
                return "woven"

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Target])
        assert Target().op() == "woven"
        assert getattr(Target.__dict__["op"], "__woven__", False)
        weaver.undeploy(deployment)
        assert Target.__dict__["op"] is original
        assert Target().op() == "plain"


class TestFalsyProceedArgs:
    """Regression: proceed() with intentionally emptied args must not
    replay the original arguments (the old ``args or jp.args`` bug)."""

    def test_outer_around_can_empty_args_through_inner_around(self):
        class Target:
            def op(self, *args, **kwargs):
                return (args, kwargs)

        class A(Aspect):
            @around("execution(Target.op)", order=1)
            def strip(self, jp):
                jp.args = ()
                jp.kwargs = {}
                return jp.proceed()

            @around("execution(Target.op)", order=2)
            def passthrough(self, jp):
                # The inner advice must observe the emptied arguments, not
                # the original call's.
                assert jp.args == ()
                assert jp.kwargs == {}
                return jp.proceed()

        with deployed(A(), [Target]):
            assert Target().op(1, 2, x=3) == ((), {})

    def test_proceed_with_explicit_falsy_values_is_preserved(self):
        class Target:
            def op(self, payload, **kwargs):
                return (payload, kwargs)

        class A(Aspect):
            @around("execution(Target.op)", order=1)
            def outer(self, jp):
                # Rewrites the payload to a falsy value; 0 is a real
                # argument, not "use the original".
                return jp.proceed(0)

            @around("execution(Target.op)", order=2)
            def inner(self, jp):
                assert jp.args == (0,)
                return jp.proceed()

        with deployed(A(), [Target]):
            assert Target().op(99, flag=True) == (0, {})


class TestStaticFastPath:
    def test_static_advice_skips_joinpoint_stack(self):
        frames = []

        class Target:
            def op(self):
                return "ok"

        class A(Aspect):
            @before("execution(Target.op)")
            def peek(self, jp):
                frames.append(current_stack())

        with deployed(A(), [Target]):
            Target().op()
        # Fully static weave: the fast path does not push a frame.
        assert frames == [()]

    def test_dynamic_residue_still_sees_own_frame(self):
        frames = []

        class Target:
            def op(self):
                return "ok"

        class A(Aspect):
            @before("execution(Target.op) && cflow(execution(Target.op))")
            def peek(self, jp):
                frames.append([f.name for f in current_stack()])

        with deployed(A(), [Target]):
            Target().op()
        # cflow(execution(Target.op)) matches the join point itself, which
        # requires the frame to be pushed before residue filtering.
        assert frames == [["op"]]

    def test_static_advice_keeps_frames_when_cflow_entry(self):
        log = []

        class Target:
            def entry(self):
                return self.op()

            def op(self):
                return "ok"

        class A(Aspect):
            # Static advice on the cflow entry shadow itself...
            @before("execution(Target.entry)")
            def on_entry(self, jp):
                log.append("entry")

            # ...which another advice's cflow residue must still observe.
            @before("execution(Target.op) && cflowbelow(execution(Target.entry))")
            def nested(self, jp):
                log.append("nested")

        with deployed(A(), [Target]):
            Target().op()      # outside the flow: no 'nested'
            Target().entry()   # inside: both
        assert log == ["entry", "nested"]

    def test_fast_path_exception_semantics(self):
        log = []

        class Target:
            def op(self):
                raise KeyError("missing")

        class A(Aspect):
            @after_throwing("execution(Target.op)")
            def threw(self, jp):
                log.append(type(jp.result).__name__)

        with deployed(A(), [Target]):
            with pytest.raises(KeyError):
                Target().op()
        assert log == ["KeyError"]

    def test_negated_pointcut_reevaluates_runtime_class(self):
        """Regression: ~execution(Sub.*) has no dynamic *test* but its
        matches_dynamic re-checks the shadow against the runtime class —
        the fast path must not skip it for subclass instances."""
        log = []

        class Node:
            def render(self):
                return "node"

        class PaintingNode(Node):
            pass

        class A(Aspect):
            @before("execution(Node.render) && !execution(PaintingNode.*)")
            def note(self, jp):
                log.append(type(jp.target).__name__)

        with deployed(A(), [Node]):
            Node().render()
            PaintingNode().render()  # inherited shadow, negated at runtime
        assert log == ["Node"]

    def test_disjunction_keeps_runtime_check(self):
        from repro.aop import execution

        # Or re-evaluates matches_shadow per call; its advice must stay on
        # the residue-checking path even though has_dynamic_test is False.
        pointcut = execution("Node.render") | execution("Index.render")
        assert not pointcut.has_dynamic_test
        assert not pointcut.residue_free()

    def test_later_static_deploy_keeps_cflow_of_earlier_deploy(self):
        """Regression: advice installed over an earlier deployment's
        wrapper must push its frame before running, so calls made *from*
        that advice stay inside the join point's control flow."""
        hits = []

        class C:
            def entry(self):
                return "entry"

            def helper(self):
                return "helper"

        class CflowAspect(Aspect):
            @before("execution(C.helper) && cflow(execution(C.entry))")
            def note(self, jp):
                hits.append("cflow")

        class StaticAspect(Aspect):
            @before("execution(C.entry)")
            def call_helper(self, jp):
                jp.target.helper()  # must already be within entry's flow

        weaver = Weaver()
        weaver.deploy(CflowAspect(), [C])
        weaver.deploy(StaticAspect(), [C])
        try:
            C().entry()
        finally:
            weaver.undeploy_all()
        # Seed semantics: both the advice-originated helper call and any
        # helper call from entry's body would match; here the advice call
        # alone must be seen.
        assert hits == ["cflow"]

    def test_cflow_watcher_sees_other_deployments_field_frames(self):
        """Regression: a cflow(field_set) residue in one deployment must
        observe field frames pushed by another deployment's woven field."""
        hits = []

        class C:
            def __init__(self):
                self.x = 0

            def compute(self):
                return self.x

        class Watcher(Aspect):
            @before("execution(C.compute) && cflow(set(C.x))")
            def note(self, jp):
                hits.append("cflow-hit")

        class FieldAspect(Aspect):
            @before("set(C.x)")
            def on_set(self, jp):
                jp.target.__dict__.setdefault("x", 0)
                jp.target.compute()  # runs within the FIELD_SET frame

        weaver = Weaver()
        weaver.deploy(Watcher(), [C], require_match=False)
        weaver.deploy(FieldAspect(), [C], fields={"x"})
        try:
            c = C.__new__(C)
            c.x = 5
        finally:
            weaver.undeploy_all()
        assert hits == ["cflow-hit"]

    def test_cflow_watcher_sees_other_deployments_method_frames(self):
        """Regression: a static weave on a class outside a cflow watcher's
        targets must still push the frames the watcher observes."""
        hits = []

        class C:
            def m(self, d):
                return d.n()

        class D:
            def n(self):
                return "n"

        class Watcher(Aspect):
            @before("execution(D.n) && cflow(execution(C.m))")
            def note(self, jp):
                hits.append("hit")

        class StaticOnC(Aspect):
            @before("execution(C.m)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        weaver.deploy(Watcher(), [D])
        weaver.deploy(StaticOnC(), [C])  # C is not in the watcher's targets
        try:
            C().m(D())
        finally:
            weaver.undeploy_all()
        assert hits == ["hit"]

    def test_static_field_access_fast_path(self):
        events = []

        class Target:
            def __init__(self):
                self.level = 1

        class A(Aspect):
            @before("set(Target.level)")
            def on_set(self, jp):
                events.append(("set", jp.value, current_stack()))

            @before("get(Target.level)")
            def on_get(self, jp):
                events.append(("get", None, current_stack()))

        with deployed(A(), [Target], fields={"level"}):
            t = Target()
            assert t.level == 1
        assert events == [("set", 1, ()), ("get", None, ())]


class TestDeployAll:
    def test_deploy_all_matches_sequential_deploys(self):
        def fresh():
            class Target:
                def op(self):
                    return "base"

            return Target

        def make(tag, log):
            class A(Aspect):
                @around("execution(Target.op)")
                def wrap(self, jp, _tag=tag):
                    log.append(f"enter:{_tag}")
                    try:
                        return jp.proceed()
                    finally:
                        log.append(f"exit:{_tag}")

            return A()

        # Sequential deploys (the reference semantics).
        TargetA, log_a = fresh(), []
        weaver_a = Weaver()
        for tag in ("first", "second"):
            weaver_a.deploy(make(tag, log_a), [TargetA])
        TargetA().op()
        weaver_a.undeploy_all()

        # deploy_all over the same shape.
        TargetB, log_b = fresh(), []
        weaver_b = Weaver()
        deployments = weaver_b.deploy_all(
            [make("first", log_b), make("second", log_b)], [TargetB]
        )
        TargetB().op()
        weaver_b.undeploy_all()

        assert len(deployments) == 2
        assert log_a == log_b == [
            "enter:second",
            "enter:first",
            "exit:first",
            "exit:second",
        ]
        assert "op" not in TargetB.__dict__ or TargetB().op() == "base"
        assert TargetB().op() == "base"

    def test_deploy_all_undeploy_all_restores_originals(self, _wrapper_tier):
        class Target:
            def op(self):
                return 1

            def other(self):
                return 2

        original_op = Target.__dict__["op"]
        original_other = Target.__dict__["other"]

        class A(Aspect):
            @before("execution(Target.op)")
            def noop(self, jp):
                pass

        class B(Aspect):
            @before("execution(Target.other)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        deployments = weaver.deploy_all([A(), B()], [Target])
        if _wrapper_tier == "monitor":
            # The monitor tier never touches the class dict: the members
            # stay the originals and the advice lives in registrations.
            assert Target.__dict__["op"] is original_op
            assert Target.__dict__["other"] is original_other
            assert all(d.monitor_sites and not d.members for d in deployments)
        else:
            assert Target.__dict__["op"] is not original_op
            assert Target.__dict__["other"] is not original_other
        weaver.undeploy_all()
        assert Target.__dict__["op"] is original_op
        assert Target.__dict__["other"] is original_other
        assert all(not d.monitor_sites for d in deployments)


class TestShadowIndex:
    def test_index_reflects_weaver_mutations(self, _wrapper_tier):
        class Target:
            def op(self):
                return 1

        from repro.aop import method_shadows

        baseline = {s.name for s in method_shadows(Target)}
        assert baseline == {"op"}

        class A(Aspect):
            @before("execution(Target.op)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Target])
        woven = {s.name: s.original for s in method_shadows(Target)}
        if _wrapper_tier == "monitor":
            # No member installed, so the scan still sees the original —
            # a later deployment stacks in the registration table rather
            # than nesting a wrapper around one.
            assert deployment.monitor_sites
            assert not getattr(Target.__dict__["op"], "__woven__", False)
            assert woven["op"] is Target.__dict__["op"]
        else:
            # The index was invalidated: a rescan sees the wrapper as the
            # shadow (so a later deployment nests around it).
            assert getattr(Target.__dict__["op"], "__woven__", False)
            assert woven["op"] is Target.__dict__["op"]
        weaver.undeploy(deployment)
        restored = {s.name: s.original for s in method_shadows(Target)}
        assert restored["op"] is Target.__dict__["op"]
        assert not hasattr(restored["op"], "__woven__")

    def test_introduced_method_is_weavable_in_same_deploy(self):
        from repro.aop import Introduction

        class Target:
            def op(self):
                return 1

        log = []

        class A(Aspect):
            def introductions(self):
                return [Introduction("Target", "ping", lambda self: "pong")]

            @before("execution(Target.ping)")
            def noop(self, jp):
                log.append("ping-advised")

        with deployed(A(), [Target]):
            assert Target().ping() == "pong"
        assert log == ["ping-advised"]
        assert not hasattr(Target, "ping")

    def test_subclass_entries_invalidated_with_base(self, _wrapper_tier):
        from repro.aop import method_shadows

        class Base:
            def op(self):
                return "base"

        class Sub(Base):
            pass

        # Prime the cache for both classes.
        assert {s.name for s in method_shadows(Sub)} == {"op"}

        class A(Aspect):
            @before("execution(Base.op)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Base])
        sub_shadow = {s.name: s.original for s in method_shadows(Sub)}
        if _wrapper_tier == "monitor":
            # No member mutated, so Sub's scan needs no invalidation —
            # but Sub inherits Base's monitored code object, so the
            # advice covers subclass calls exactly as a wrapper would.
            assert deployment.monitor_sites
            assert not hasattr(sub_shadow["op"], "__woven__")
        else:
            # Weaving Base must invalidate Sub's cached scan too: Sub
            # inherits the wrapper now.
            assert getattr(sub_shadow["op"], "__woven__", False)
        weaver.undeploy(deployment)
        sub_shadow = {s.name: s.original for s in method_shadows(Sub)}
        assert not hasattr(sub_shadow["op"], "__woven__")

    def test_undeploy_restores_cache_snapshot_without_rescan(self):
        """Deploy/undeploy cycles must not rescan unchanged classes."""
        import repro.aop.weaver as weaver_mod

        class Target:
            def op(self):
                return 1

        class A(Aspect):
            @before("execution(Target.op)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        weaver.undeploy(weaver.deploy(A(), [Target]))  # prime the snapshot path

        calls = []
        real_scan = weaver_mod._scan_method_shadows

        def counting_scan(cls):
            calls.append(cls)
            return real_scan(cls)

        weaver_mod._scan_method_shadows = counting_scan
        try:
            for _ in range(5):
                weaver.undeploy(weaver.deploy(A(), [Target]))
        finally:
            weaver_mod._scan_method_shadows = real_scan
        assert calls == []  # every cycle restored the pre-weave snapshot

    def test_interleaved_deployments_degrade_to_rescan_safely(self):
        """Non-LIFO-friendly interleavings must not restore stale entries."""

        class Target:
            def foo(self):
                return "foo"

            def bar(self):
                return "bar"

        class OnFoo(Aspect):
            @before("execution(Target.foo)")
            def noop(self, jp):
                pass

        class OnBar(Aspect):
            @before("execution(Target.bar)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        first = weaver.deploy(OnFoo(), [Target])
        second = weaver.deploy(OnBar(), [Target])
        weaver.undeploy(first)  # out of order, but disjoint names: allowed
        # The restored view must still see OnBar's wrapper on `bar`, or a
        # third deployment would capture (and later "restore") stale state.
        from repro.aop import method_shadows

        originals = {s.name: s.original for s in method_shadows(Target)}
        if second.monitor_sites:
            # Monitor tier: neither deployment installed a member, so no
            # snapshot can go stale — `bar` is advised via registration.
            assert [r.name for r in second.monitor_sites] == ["bar"]
            assert not first.monitor_sites  # released by the undeploy
        else:
            assert getattr(originals["bar"], "__woven__", False)
        assert not hasattr(originals["foo"], "__woven__")
        weaver.undeploy(second)
        assert not hasattr(Target.__dict__["foo"], "__woven__")
        assert not hasattr(Target.__dict__["bar"], "__woven__")

    def test_base_weave_stamps_uncached_subclass_snapshots(self):
        """Regression: out-of-LIFO undeploy of a subclass deployment must
        not restore a snapshot predating an interleaved base-class weave."""
        log = []

        class Base:
            def bar(self):
                return "bar"

        class Sub(Base):
            def foo(self):
                return "foo"

        def noop_aspect(pointcut, tag):
            class A(Aspect):
                @before(pointcut)
                def note(self, jp, _tag=tag):
                    log.append(_tag)

            return A()

        weaver = Weaver()
        d1 = weaver.deploy(noop_aspect("execution(Sub.foo)", "A1"), [Sub])
        d2 = weaver.deploy(noop_aspect("execution(Base.bar)", "A2"), [Base])
        weaver.undeploy(d1)  # non-overlapping out-of-LIFO: allowed
        # A third deployment on Sub must see (and wrap) A2's inherited
        # wrapper, not a stale pre-A2 scan.
        weaver.deploy(noop_aspect("execution(Sub.bar)", "A3"), [Sub])
        Sub().bar()
        assert sorted(log) == ["A2", "A3"]
        weaver.undeploy_all()

    def test_clear_blocks_stale_snapshot_restore(self):
        """Regression: shadow_index.clear() must make outstanding
        deployments' snapshots unrestorable."""
        from repro.aop import method_shadows

        class Target:
            def op(self):
                return 1

        class A(Aspect):
            @before("execution(Target.*)")
            def noop(self, jp):
                pass

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Target])
        Target.extra = lambda self: 2  # external mutation while deployed
        shadow_index.clear()
        weaver.undeploy(deployment)
        assert {s.name for s in method_shadows(Target)} == {"op", "extra"}
        deployment = weaver.deploy(A(), [Target])
        assert sorted(deployment.woven_signatures()) == [
            "Target.extra",
            "Target.op",
        ]
        weaver.undeploy(deployment)

    def test_manual_invalidation_picks_up_external_mutation(self):
        from repro.aop import method_shadows

        class Target:
            def op(self):
                return 1

        assert {s.name for s in method_shadows(Target)} == {"op"}
        Target.extra = lambda self: 2  # mutated outside the weaver
        shadow_index.invalidate(Target)
        assert {s.name for s in method_shadows(Target)} == {"op", "extra"}
