"""The static weave-plan analyzer, codegen verifier and lint gate.

Every diagnostic code fires on a seeded defect and stays silent on the
equivalent healthy shape, under **both** dispatch tiers
(``REPRO_AOP_CODEGEN=1`` and ``=0``) — the analyzer never deploys, but
the live-runtime path (:func:`repro.aop.analyze_runtime`) and the
``lint=`` gate do interact with woven state, so the tier matters there.
The clean-plan fixtures assert zero false positives on the navigation
stacks the shipped ``examples/`` weave.
"""

import threading
import warnings

import pytest

from repro.aop import (
    AopLintWarning,
    Aspect,
    WeaverRuntime,
    WeavingError,
    analyze_concurrency,
    analyze_deployment,
    analyze_runtime,
    around,
    before,
    introduce,
    verify_codegen_templates,
    verify_wrapper_source,
)
from repro.aop.advice import AdviceKind
from repro.aop.analysis import (
    _shape_advice,
    enumerate_template_sources,
)
from repro.aop.codegen import (
    _render_signature,
    _scoped_static_source,
    _static_source,
)


@pytest.fixture(params=["1", "0"], ids=["codegen", "generic"])
def codegen_tier(request, monkeypatch):
    monkeypatch.setenv("REPRO_AOP_CODEGEN", request.param)
    return request.param


class Renderer:
    def render(self, node, depth=1):
        return ("render", node, depth)

    def paint(self):
        return "paint"


class Slotted:
    __slots__ = ("x",)


def codes(diags):
    return [d.code for d in diags]


# -- weave-plan lint: APL001-APL006 --------------------------------------------


class TypoAspect(Aspect):
    @before("execution(Renderer.rendr)")
    def note(self, jp):
        pass


class BeforeAspect(Aspect):
    @before("execution(Renderer.render)")
    def note(self, jp):
        pass


class TestPointcutMatchesNothing:
    def test_typo_is_an_error(self, codegen_tier):
        diags = analyze_deployment(TypoAspect(), [Renderer])
        assert codes(diags) == ["APL001"]
        assert diags[0].severity == "error"
        assert "rendr" in diags[0].message
        assert diags[0].aspect == "TypoAspect"

    def test_one_unmatched_advice_among_matching_ones(self, codegen_tier):
        """require_match cannot see this: the aspect as a whole matches."""

        class HalfTypo(Aspect):
            @before("execution(Renderer.render)")
            def good(self, jp):
                pass

            @before("execution(Renderer.rendr)")
            def bad(self, jp):
                pass

        diags = analyze_deployment(HalfTypo(), [Renderer])
        assert codes(diags) == ["APL001"]
        assert diags[0].advice == "bad"

    def test_matching_aspect_is_silent(self, codegen_tier):
        assert analyze_deployment(BeforeAspect(), [Renderer]) == []

    def test_advice_on_introduced_member_matches(self, codegen_tier):
        """An aspect may advise the member it introduces itself."""

        def extra(self):
            return "extra"

        class IntroAndAdvise(Aspect):
            def introductions(self):
                return [introduce("Renderer", "extra", extra)]

            @before("execution(Renderer.extra)")
            def note(self, jp):
                pass

        assert analyze_deployment(IntroAndAdvise(), [Renderer]) == []

    def test_field_advice_matches_registered_fields(self, codegen_tier):
        aspect = (
            Aspect.builder("Fields")
            .before("get(Renderer.depth)", lambda jp: None)
            .build()
        )
        assert analyze_deployment(aspect, [Renderer], fields=("depth",)) == []
        assert codes(analyze_deployment(aspect, [Renderer])) == ["APL001"]


class ShortCircuit(Aspect):
    @around("execution(Renderer.render)", order=-1)
    def short(self, jp):
        return "short"

    @around("execution(Renderer.render)")
    def inner(self, jp):
        return jp.proceed()


class ProceedingAround(Aspect):
    @around("execution(Renderer.render)")
    def run(self, jp):
        return jp.proceed()


class BlockingAround(Aspect):
    # Distinct order keeps APL003 out of these fixtures — the check under
    # test here is only the shadowing one.
    @around("execution(Renderer.render)", order=-5)
    def veto(self, jp):
        return None


class TestAdviceShadowed:
    def test_outer_around_without_proceed(self, codegen_tier):
        diags = analyze_deployment(ShortCircuit(), [Renderer])
        assert codes(diags) == ["APL002"]
        assert diags[0].advice == "short"
        assert "inner" in diags[0].message
        assert diags[0].site == "Renderer.render"

    def test_later_deployment_shadows_earlier_one(self, codegen_tier):
        # The later deployment wraps the earlier one; its non-proceeding
        # around starves the entire inner stack.
        diags = analyze_deployment(
            [ProceedingAround(), BlockingAround()], [Renderer]
        )
        assert codes(diags) == ["APL002"]
        assert diags[0].aspect == "BlockingAround"

    def test_innermost_blocker_shadows_nothing(self, codegen_tier):
        # Deployed first = innermost: nothing runs beneath it, so the
        # bare original replacement is the aspect's documented meaning.
        diags = analyze_deployment(
            [BlockingAround(), ProceedingAround()], [Renderer]
        )
        assert diags == []

    def test_proceeding_stack_is_silent(self, codegen_tier):
        assert (
            analyze_deployment([ProceedingAround(), ProceedingAround()], [Renderer])
            == []
        )


class EqualOrderA(Aspect):
    @around("execution(Renderer.render)")
    def one(self, jp):
        return jp.proceed()


class EqualOrderB(Aspect):
    @around("execution(Renderer.render)")
    def two(self, jp):
        return jp.proceed()


class OrderedB(Aspect):
    @around("execution(Renderer.render)", order=5)
    def two(self, jp):
        return jp.proceed()


class TestAmbiguousPrecedence:
    def test_two_aspect_classes_same_order(self, codegen_tier):
        diags = analyze_deployment([EqualOrderA(), EqualOrderB()], [Renderer])
        assert codes(diags) == ["APL003"]
        assert "EqualOrderA" in diags[0].message
        assert "EqualOrderB" in diags[0].message

    def test_same_class_stacked_is_the_idiom(self, codegen_tier):
        # Stacking several instances of one aspect class is the
        # navigation-stack idiom: ordered by deployment order on purpose.
        assert analyze_deployment([EqualOrderA(), EqualOrderA()], [Renderer]) == []

    def test_distinct_orders_are_silent(self, codegen_tier):
        assert analyze_deployment([EqualOrderA(), OrderedB()], [Renderer]) == []


class CflowResidue(Aspect):
    @around("execution(Renderer.render) && cflow(execution(Renderer.paint))")
    def watch(self, jp):
        return jp.proceed()


class TestResidueOnHotShadow:
    def test_per_call_residue_on_hot_shadow(self, codegen_tier):
        diags = analyze_deployment(
            CflowResidue(), [Renderer], hot_shadows={"Renderer.render"}
        )
        assert codes(diags) == ["APL004"]
        assert "cflow" in diags[0].message

    def test_cold_shadow_is_silent(self, codegen_tier):
        assert (
            analyze_deployment(
                CflowResidue(), [Renderer], hot_shadows={"Other.render"}
            )
            == []
        )

    def test_residue_free_advice_on_hot_shadow_is_silent(self, codegen_tier):
        assert (
            analyze_deployment(
                BeforeAspect(), [Renderer], hot_shadows={"Renderer.render"}
            )
            == []
        )


class TestScopeUnweakrefable:
    def test_slotted_scope_member(self, codegen_tier):
        diags = analyze_deployment(
            BeforeAspect(), [Renderer], instances=[Slotted()]
        )
        assert codes(diags) == ["APL005"]
        assert "Slotted" in diags[0].message

    def test_weakrefable_members_are_silent(self, codegen_tier):
        assert (
            analyze_deployment(BeforeAspect(), [Renderer], instances=[Renderer()])
            == []
        )

    def test_one_finding_per_pinned_type(self, codegen_tier):
        diags = analyze_deployment(
            BeforeAspect(), [Renderer], instances=[Slotted(), Slotted()]
        )
        assert codes(diags) == ["APL005"]


def _shadow_paint(self):
    return "shadow-paint"


class IntroClash(Aspect):
    def introductions(self):
        return [introduce("Renderer", "paint", _shadow_paint)]


class IntroReplace(Aspect):
    def introductions(self):
        return [introduce("Renderer", "paint", _shadow_paint, replace=True)]


class IntroFresh(Aspect):
    def introductions(self):
        return [introduce("Renderer", "glow", _shadow_paint)]


class TestIntroductionConflict:
    def test_existing_member_collision(self, codegen_tier):
        diags = analyze_deployment(IntroClash(), [Renderer])
        assert codes(diags) == ["APL006"]
        assert diags[0].severity == "error"
        assert diags[0].site == "Renderer.paint"

    def test_replace_true_is_silent(self, codegen_tier):
        assert analyze_deployment(IntroReplace(), [Renderer]) == []

    def test_two_plan_entries_introducing_one_name(self, codegen_tier):
        diags = analyze_deployment([IntroFresh(), IntroFresh()], [Renderer])
        assert codes(diags) == ["APL006"]
        assert diags[0].site == "Renderer.glow"


# -- monitor-tier pins: APL007 -------------------------------------------------


class Panel:
    # No defaulted parameters: the shadow shape itself is monitor-clean,
    # so only *plan* properties can pin these groups to a wrapper tier.
    def show(self, frame):
        return ("show", frame)


class PanelObserver(Aspect):
    @before("execution(Panel.show)")
    def note(self, jp):
        pass


class PanelWrapper(Aspect):
    # Explicit order keeps APL003 (ambiguous cross-aspect order) quiet;
    # these fixtures isolate the APL007 pins.
    @around("execution(Panel.show)", order=-1)
    def wrap(self, jp):
        return jp.proceed()


class TestMonitorTierPinned:
    def test_clean_observation_plan_is_silent(self, codegen_tier):
        assert analyze_deployment(PanelObserver(), [Panel]) == []

    def test_instance_scope_pins(self, codegen_tier):
        diags = analyze_deployment(
            PanelObserver(), [Panel], instances=[Panel()]
        )
        assert codes(diags) == ["APL007"]
        assert diags[0].severity == "advisory"
        assert diags[0].site == "Panel.show"
        assert "instance-scoped" in diags[0].message

    def test_stacking_above_a_wrapper_group_pins(self, codegen_tier):
        diags = analyze_deployment([PanelWrapper(), PanelObserver()], [Panel])
        assert codes(diags) == ["APL007"]
        assert "stacks above an earlier wrapper-tier" in diags[0].message

    def test_reversed_order_unpins(self, codegen_tier):
        # Observation first: it takes the monitor tier; the around
        # wrapper stacks above it without conflict.
        assert analyze_deployment([PanelObserver(), PanelWrapper()], [Panel]) == []

    def test_shadow_shape_obstacles_stay_silent(self, codegen_tier):
        # Renderer.render has a defaulted parameter — inherent to the
        # advised code, not an actionable plan property, so no advisory.
        assert analyze_deployment(BeforeAspect(), [Renderer]) == []


# -- concurrency lint: APL201 --------------------------------------------------

HITS: dict = {}


class SharedWrite(Aspect):
    @before("execution(Renderer.render)")
    def count(self, jp):
        HITS["n"] = HITS.get("n", 0) + 1


class LockedWrite(Aspect):
    _lock = threading.Lock()

    @before("execution(Renderer.render)")
    def count(self, jp):
        with self._lock:
            HITS["n"] = HITS.get("n", 0) + 1


class SelfWrite(Aspect):
    calls = 0

    @before("execution(Renderer.render)")
    def count(self, jp):
        self.calls += 1


class LocalWrite(Aspect):
    @before("execution(Renderer.render)")
    def count(self, jp):
        total = {}
        total["n"] = 1


class TestConcurrencyLint:
    def test_unsynchronized_shared_write(self, codegen_tier):
        diags = analyze_concurrency(SharedWrite())
        assert codes(diags) == ["APL201"]
        assert diags[0].severity == "advisory"
        assert "HITS" in diags[0].message

    def test_lock_guarded_write_is_silent(self, codegen_tier):
        assert analyze_concurrency(LockedWrite()) == []

    def test_self_and_local_writes_are_silent(self, codegen_tier):
        assert analyze_concurrency(SelfWrite()) == []
        assert analyze_concurrency(LocalWrite()) == []


# -- codegen source verification: APL101-APL104 --------------------------------


def _sample(self, node, depth=1):
    return (node, depth)


class TestCodegenVerification:
    def test_every_template_shape_is_clean(self, codegen_tier):
        assert verify_codegen_templates() == []

    def test_shape_matrix_covers_method_and_field_variants(self, codegen_tier):
        labels = [label for label, _ in enumerate_template_sources()]
        assert len(labels) == len(set(labels))
        assert any(label.startswith("method/") for label in labels)
        assert any(label.startswith("field/") for label in labels)
        assert any("scoped-marker-sig" in label for label in labels)
        assert any("scoped-id-packed" in label for label in labels)
        assert len(labels) >= 25

    def test_apl101_syntax_error(self, codegen_tier):
        diags = verify_wrapper_source("def _factory(:", label="broken")
        assert codes(diags) == ["APL101"]
        assert diags[0].site == "broken"

    def test_apl102_free_name_injection(self, codegen_tier):
        advice = _shape_advice([AdviceKind.BEFORE], bound=True)
        source, _ = _static_source(advice)
        seeded = source.replace("jp.target = self", "jp.target = os.environ")
        assert seeded != source
        assert "APL102" in codes(verify_wrapper_source(seeded, label="inject"))

    def test_apl103_closure_capture(self, codegen_tier):
        advice = _shape_advice([AdviceKind.BEFORE], bound=True)
        source, _ = _static_source(advice)
        seeded = source.replace(
            "def wrapper(self, *args, **kwargs):",
            "_shared = {}\n    def wrapper(self, *args, **kwargs):",
        ).replace("jp.kwargs = kwargs", "jp.kwargs = _shared")
        assert seeded != source
        assert "APL103" in codes(verify_wrapper_source(seeded, label="capture"))

    def test_apl104_signature_drift(self, codegen_tier):
        advice = _shape_advice([AdviceKind.BEFORE], bound=True)
        sig = _render_signature(_sample)
        assert sig is not None
        source, _ = _scoped_static_source(advice, "_aop_scope_0", sig)
        seeded = source.replace(
            "return _original(self, node, depth)",
            "return _original(self, depth, node)",
        )
        assert seeded != source
        assert "APL104" in codes(verify_wrapper_source(seeded, label="drift"))


# -- the lint gate on DeploymentSet.add ----------------------------------------


class TestLintGate:
    def test_error_mode_refuses_to_weave(self, codegen_tier):
        runtime = WeaverRuntime("lint-error")
        with runtime.transaction([Renderer]) as tx:
            with pytest.raises(WeavingError, match="APL001"):
                tx.add(TypoAspect(), require_match=False, lint="error")
            assert tx.deployments == []
        assert not hasattr(Renderer.render, "__woven__")

    def test_warn_mode_warns_and_deploys(self, codegen_tier):
        runtime = WeaverRuntime("lint-warn")
        with runtime.transaction([Renderer]) as tx:
            with pytest.warns(AopLintWarning, match="APL001"):
                tx.add(TypoAspect(), require_match=False, lint="warn")
            assert len(tx.deployments) == 1
            tx.undeploy()

    def test_clean_add_is_silent(self, codegen_tier):
        runtime = WeaverRuntime("lint-clean")
        with runtime.transaction([Renderer]) as tx:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                tx.add(BeforeAspect(), lint="error")
            assert [w for w in caught if w.category is AopLintWarning] == []
            assert Renderer().render("n") == ("render", "n", 1)
            tx.undeploy()

    def test_invalid_mode_is_rejected_before_weaving(self, codegen_tier):
        runtime = WeaverRuntime("lint-bad-mode")
        with runtime.transaction([Renderer]) as tx:
            with pytest.raises(ValueError, match="lint mode"):
                tx.add(BeforeAspect(), lint="loud")
            assert tx.deployments == []


# -- clean-plan fixtures over the shipped examples' stacks ---------------------


class TestShippedExamplesAreClean:
    """Zero false positives on every stack the examples weave."""

    @pytest.fixture()
    def navigation_aspects(self):
        from repro.baselines import museum_fixture
        from repro.core import NavigationAspect, default_museum_spec
        from repro.core.navspec import ACCESS_KINDS

        fixture = museum_fixture()
        return [
            NavigationAspect(default_museum_spec(kind), fixture)
            for kind in ACCESS_KINDS
        ]

    def test_full_navigation_stack_plan_is_clean(
        self, codegen_tier, navigation_aspects
    ):
        from repro.core import PageRenderer

        diags = analyze_deployment(navigation_aspects, [PageRenderer])
        diags += analyze_concurrency(navigation_aspects)
        assert diags == []

    def test_breadcrumb_aspect_is_clean(self, codegen_tier):
        from repro.core import PageRenderer
        from repro.navigation.session import BreadcrumbAspect, BreadcrumbTrail

        aspect = BreadcrumbAspect(trail=BreadcrumbTrail())
        assert (
            analyze_deployment(
                aspect, [PageRenderer], instances=[Renderer()]
            )
            == []
        )
        assert analyze_concurrency(aspect) == []

    def test_live_runtime_analysis_is_clean(self, codegen_tier, navigation_aspects):
        """Deploy the real stack, analyze the live runtime, find nothing.

        Under the codegen tier this also verifies every installed
        wrapper's ``__codegen_source__`` via the APL1xx checks.
        """
        from repro.core import PageRenderer

        runtime = WeaverRuntime("live-analysis")
        with runtime.transaction([PageRenderer]) as tx:
            for aspect in navigation_aspects:
                tx.add(aspect)
            try:
                assert analyze_runtime(runtime) == []
            finally:
                tx.undeploy()

    def test_lint_gated_site_build_succeeds(self, codegen_tier):
        from repro.baselines import museum_fixture
        from repro.core import build_woven_site, default_museum_spec

        fixture = museum_fixture()
        site = build_woven_site(
            fixture, default_museum_spec("index"), lint="error"
        )
        assert "index.html" in site.as_text()
