"""The first-class runtime API: scoped runtimes, transactions, shims.

Covers what is *new* in the ``WeaverRuntime`` redesign — scoped state and
cross-runtime isolation, the transactional ``DeploymentSet`` (incremental
add, context-manager rollback, partial undeploy), introspection, the
vectorized shadow scan, and the deprecation shims over the default
runtime.  The full advice-chain semantics matrix stays in
``test_compiled_chain.py`` (everything it pins runs unchanged through the
shims).
"""

import pytest

from repro.aop import (
    Aspect,
    Introduction,
    Weaver,
    WeaverRuntime,
    WeavingError,
    before,
    cflow,
    default_runtime,
    deploy,
    deploy_all,
    deployed,
    execution,
    undeploy,
)
from repro.aop.weaver import _scan_method_shadows


@pytest.fixture(autouse=True)
def _wrapper_tiers_only(monkeypatch):
    """Pin the monitor tier off: this file asserts *wrapper* runtime
    bookkeeping (installed members, scan-cache snapshots, cross-runtime
    tokens), which the zero-wrapper monitor tier — auto-on under 3.12+ —
    bypasses by design.  Its runtime semantics live in
    ``test_monitor.py``."""
    monkeypatch.setenv("REPRO_AOP_MONITOR", "0")


def fresh_target():
    class Target:
        def op(self):
            return "op"

        def other(self):
            return "other"

    return Target


def make_tagger(tag, log):
    class Tagger(Aspect):
        @before("execution(Target.op)")
        def note(self, jp):
            log.append(tag)

    Tagger.__name__ = f"Tagger_{tag}"
    return Tagger()


class TestWeaverRuntime:
    def test_deploy_and_undeploy(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime("t")
        deployment = runtime.deploy(make_tagger("a", log), [Target])
        assert Target().op() == "op"
        assert log == ["a"]
        runtime.undeploy(deployment)
        assert Target().op() == "op"
        assert log == ["a"]
        assert runtime.deployments == []

    def test_runtime_state_is_scoped(self):
        runtime = WeaverRuntime("scoped")
        assert runtime.shadow_index is not default_runtime.shadow_index
        assert runtime.watchers is not default_runtime.watchers
        assert runtime.codegen_cache is not default_runtime.codegen_cache

    def test_codegen_cache_statistics_are_per_runtime(self, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")
        log = []
        a_runtime = WeaverRuntime("a")
        b_runtime = WeaverRuntime("b")
        Target = fresh_target()
        a_runtime.undeploy(a_runtime.deploy(make_tagger("x", log), [Target]))
        assert a_runtime.codegen_cache.wrappers_built == 1
        assert b_runtime.codegen_cache.wrappers_built == 0

    def test_undeploy_is_idempotent(self):
        Target = fresh_target()
        runtime = WeaverRuntime()
        deployment = runtime.deploy(make_tagger("a", []), [Target])
        runtime.undeploy(deployment)
        runtime.undeploy(deployment)  # second call is a no-op
        assert Target().op() == "op"


class TestDeploymentSet:
    def test_incremental_add_then_commit(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        tx = runtime.transaction([Target])
        tx.add(make_tagger("a", log))
        tx.add(make_tagger("b", log))
        handles = tx.commit()
        assert len(handles) == 2
        Target().op()
        # Later aspects wrap earlier ones: b's (outer) before advice first.
        assert log == ["b", "a"]
        runtime.undeploy_all()
        assert Target().op() == "op"

    def test_context_manager_commits_on_clean_exit(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        with runtime.transaction([Target]) as tx:
            tx.add(make_tagger("a", log))
        assert tx.committed
        Target().op()
        assert log == ["a"]
        tx.undeploy()
        assert not hasattr(Target.__dict__["op"], "__woven__")

    def test_context_manager_rolls_back_on_exception(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        original = Target.__dict__["op"]
        with pytest.raises(ValueError, match="boom"):
            with runtime.transaction([Target]) as tx:
                tx.add(make_tagger("a", log))
                tx.add(make_tagger("b", log))
                raise ValueError("boom")
        assert Target.__dict__["op"] is original
        assert runtime.deployments == []
        assert tx.deployments == []

    def test_rollback_reverts_introductions(self):
        Target = fresh_target()

        class Grafting(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                pass

            def introductions(self):
                return [Introduction("Target", "grafted", lambda self: "extra")]

        runtime = WeaverRuntime()
        with pytest.raises(RuntimeError):
            with runtime.transaction([Target]) as tx:
                tx.add(Grafting())
                assert Target().grafted() == "extra"
                raise RuntimeError
        assert not hasattr(Target, "grafted")

    def test_explicit_commit_disables_rollback(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        with pytest.raises(ValueError):
            with runtime.transaction([Target]) as tx:
                tx.add(make_tagger("a", log))
                tx.commit()
                raise ValueError
        Target().op()
        assert log == ["a"]  # still deployed: the commit sealed the set
        runtime.undeploy_all()

    def test_add_requires_targets_somewhere(self):
        runtime = WeaverRuntime()
        tx = runtime.transaction()
        with pytest.raises(WeavingError, match="no targets"):
            tx.add(make_tagger("a", []))

    def test_add_can_override_targets(self):
        TargetA = fresh_target()
        TargetB = fresh_target()
        log = []
        runtime = WeaverRuntime()
        with runtime.transaction([TargetA]) as tx:
            tx.add(make_tagger("a", log))
            tx.add(make_tagger("b", log), [TargetB])
        TargetA().op()
        TargetB().op()
        assert log == ["a", "b"]
        runtime.undeploy_all()

    def test_full_undeploy_unwinds_lifo(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        with runtime.transaction([Target]) as tx:
            tx.add(make_tagger("a", log))
            tx.add(make_tagger("b", log))
        tx.undeploy()
        assert Target().op() == "op"
        assert not hasattr(Target.__dict__["op"], "__woven__")
        assert tx.deployments == []

    def test_partial_undeploy_reweaves_survivors(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        tx = runtime.transaction([Target])
        first = tx.add(make_tagger("a", log))
        tx.add(make_tagger("b", log))
        tx.add(make_tagger("c", log))
        tx.undeploy([first])
        log.clear()
        Target().op()
        # Survivors re-woven in original relative order (c still wraps b).
        assert log == ["c", "b"]
        assert not first.active
        assert len(tx.deployments) == 2
        assert all(d.active for d in tx.deployments)
        tx.undeploy()
        assert Target().op() == "op"

    def test_partial_undeploy_of_middle_subset(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        tx = runtime.transaction([Target])
        tx.add(make_tagger("a", log))
        middle = tx.add(make_tagger("b", log))
        tx.add(make_tagger("c", log))
        tx.undeploy([middle])
        log.clear()
        Target().op()
        assert log == ["c", "a"]
        tx.undeploy()

    def test_partial_undeploy_rejects_foreign_deployment(self):
        Target = fresh_target()
        runtime = WeaverRuntime()
        foreign = runtime.deploy(make_tagger("x", []), [Target])
        tx = runtime.transaction([Target])
        tx.add(make_tagger("a", []))
        with pytest.raises(WeavingError, match="not active in this set"):
            tx.undeploy([foreign])
        tx.undeploy()
        runtime.undeploy(foreign)

    def test_deploy_all_is_atomic(self):
        Target = fresh_target()
        log = []

        class NoMatch(Aspect):
            @before("execution(Nothing.matches)")
            def note(self, jp):
                pass

        runtime = WeaverRuntime()
        original = Target.__dict__["op"]
        with pytest.raises(WeavingError, match="matched nothing"):
            runtime.deploy_all([make_tagger("a", log), NoMatch()], [Target])
        assert Target.__dict__["op"] is original
        assert runtime.deployments == []


class TestRuntimeIsolation:
    def test_two_runtimes_stack_without_clobbering(self):
        """Two runtimes weaving the same class nest like two deployments."""
        Target = fresh_target()
        original = Target.__dict__["op"]
        log = []
        a_runtime = WeaverRuntime("a")
        b_runtime = WeaverRuntime("b")
        a_dep = a_runtime.deploy(make_tagger("a", log), [Target])
        a_wrapper = Target.__dict__["op"]
        b_dep = b_runtime.deploy(make_tagger("b", log), [Target])
        assert Target.__dict__["op"] is not a_wrapper  # B wrapped A, not replaced
        Target().op()
        assert log == ["b", "a"]
        b_runtime.undeploy(b_dep)
        assert Target.__dict__["op"] is a_wrapper  # A's wrapper intact
        a_runtime.undeploy(a_dep)
        assert Target.__dict__["op"] is original

    def test_stale_cross_runtime_scan_is_invalidated(self):
        """A runtime's cached scan self-invalidates when another runtime weaves.

        If runtime B planned from its stale pre-A scan it would wrap the
        *unwoven* original and install it over A's wrapper — exactly the
        clobbering the shared token board exists to prevent.
        """
        Target = fresh_target()
        log = []
        a_runtime = WeaverRuntime("a")
        b_runtime = WeaverRuntime("b")
        pre = {s.name: s.original for s in b_runtime.shadow_index.shadows(Target)}
        a_dep = a_runtime.deploy(make_tagger("a", log), [Target])
        woven = {s.name: s.original for s in b_runtime.shadow_index.shadows(Target)}
        assert woven["op"] is Target.__dict__["op"]
        assert woven["op"] is not pre["op"]
        # And B deploys against the woven member, so undeploying B restores
        # A's wrapper, not the pre-A original.
        b_dep = b_runtime.deploy(make_tagger("b", log), [Target])
        b_runtime.undeploy(b_dep)
        assert Target.__dict__["op"] is woven["op"]
        a_runtime.undeploy(a_dep)
        assert Target.__dict__["op"] is pre["op"]

    def test_snapshot_restore_survives_other_runtimes_cycle(self):
        """A's pre-weave snapshot stays restorable across B's own cycle.

        B weaves and fully unweaves *after* A deploys; A's undeploy must
        still recognize its snapshot (B restored the bytes it disturbed),
        degrading to a rescan only when someone actually left the class
        changed.
        """
        Target = fresh_target()
        log = []
        a_runtime = WeaverRuntime("a")
        b_runtime = WeaverRuntime("b")
        a_dep = a_runtime.deploy(make_tagger("a", log), [Target])
        b_dep = b_runtime.deploy(make_tagger("b", log), [Target])
        b_runtime.undeploy(b_dep)
        a_runtime.undeploy(a_dep)
        assert {s.name for s in a_runtime.shadow_index.shadows(Target)} == {
            "op",
            "other",
        }
        assert Target().op() == "op"

    def test_out_of_lifo_cross_runtime_undeploy_raises(self):
        Target = fresh_target()
        log = []
        a_runtime = WeaverRuntime("a")
        b_runtime = WeaverRuntime("b")
        a_dep = a_runtime.deploy(make_tagger("a", log), [Target])
        b_dep = b_runtime.deploy(make_tagger("b", log), [Target])
        with pytest.raises(WeavingError, match="re-woven"):
            a_runtime.undeploy(a_dep)
        b_runtime.undeploy(b_dep)
        a_runtime.undeploy(a_dep)
        assert Target().op() == "op"

    def test_cflow_watchers_are_scoped(self):
        Target = fresh_target()

        class Watching(Aspect):
            @before(execution("Target.op") & cflow(execution("Target.other")))
            def note(self, jp):
                pass

        a_runtime = WeaverRuntime("a")
        b_runtime = WeaverRuntime("b")
        deployment = a_runtime.deploy(Watching(), [Target])
        assert a_runtime.watchers.count == 1
        assert b_runtime.watchers.count == 0
        assert default_runtime.watchers.count == 0
        a_runtime.undeploy(deployment)
        assert a_runtime.watchers.count == 0


class TestIntrospection:
    def test_woven_sites_report_tiers(self, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")
        Target = fresh_target()

        class Mixed(Aspect):
            @before("execution(Target.op)")
            def static_note(self, jp):
                pass

            @before(execution("Target.other") & cflow(execution("Target.op")))
            def dynamic_note(self, jp):
                pass

            def introductions(self):
                return [Introduction("Target", "grafted", lambda self: 1)]

        runtime = WeaverRuntime()
        runtime.deploy(Mixed(), [Target])
        sites = {s.signature: s for s in runtime.woven_sites()}
        assert sites["Target.op"].tier in {"codegen", "tracking"}
        assert sites["Target.other"].tier == "generic"
        assert sites["Target.grafted"].tier == "introduction"
        # `op` is both advised and a cflow entry; the advised site must
        # report its dispatch tier, and the generated source line count
        # travels with codegen sites.
        op = sites["Target.op"]
        if op.tier == "codegen":
            assert op.codegen_lines and op.codegen_lines > 5
        runtime.undeploy_all()
        assert runtime.woven_sites() == []

    def test_woven_sites_generic_tier_when_codegen_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "0")
        Target = fresh_target()
        runtime = WeaverRuntime()
        runtime.deploy(make_tagger("a", []), [Target])
        (site,) = runtime.woven_sites()
        assert site.tier == "generic"
        assert site.codegen_lines is None
        runtime.undeploy_all()

    def test_deployment_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")
        Target = fresh_target()
        runtime = WeaverRuntime()
        deployment = runtime.deploy(make_tagger("a", []), [Target])
        Target().op()
        stats = runtime.deployment_stats(deployment)
        assert stats.method_members == 1
        assert stats.field_members == 0
        assert stats.codegen_sources  # one generated wrapper
        assert stats.pools == 1
        assert stats.pooled_joinpoints_free >= 1  # the call released one
        runtime.undeploy_all()

    def test_runtime_stats_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")
        Target = fresh_target()
        runtime = WeaverRuntime("stats")
        runtime.deploy(make_tagger("a", []), [Target])
        stats = runtime.stats()
        assert stats["name"] == "stats"
        assert stats["deployments"] == 1
        assert stats["woven_sites"] == 1
        assert stats["codegen_cache"]["wrappers_built"] == 1
        runtime.undeploy_all()


class TestDeprecationShims:
    def test_weaver_warns_and_works(self):
        Target = fresh_target()
        log = []
        with pytest.warns(DeprecationWarning, match="Weaver.*deprecated"):
            weaver = Weaver()
        deployment = weaver.deploy(make_tagger("a", log), [Target])
        Target().op()
        weaver.undeploy(deployment)
        assert log == ["a"]
        assert Target().op() == "op"

    def test_weaver_shares_default_runtime_state(self):
        with pytest.warns(DeprecationWarning):
            weaver = Weaver()
        assert weaver.shadow_index is default_runtime.shadow_index
        assert weaver.watchers is default_runtime.watchers
        assert weaver.codegen_cache is default_runtime.codegen_cache

    def test_free_functions_warn_and_work(self):
        Target = fresh_target()
        log = []
        with pytest.warns(DeprecationWarning, match="deploy\\(\\) is deprecated"):
            deployment = deploy(make_tagger("a", log), [Target])
        Target().op()
        with pytest.warns(DeprecationWarning, match="undeploy\\(\\) is deprecated"):
            undeploy(deployment)
        assert log == ["a"]
        assert Target().op() == "op"

    def test_deploy_all_warns_and_works(self):
        Target = fresh_target()
        log = []
        with pytest.warns(DeprecationWarning, match="deploy_all"):
            deployments = deploy_all(
                [make_tagger("a", log), make_tagger("b", log)], [Target]
            )
        Target().op()
        assert log == ["b", "a"]
        for deployment in reversed(deployments):
            default_runtime.undeploy(deployment)
        assert Target().op() == "op"

    def test_deployed_warns(self):
        Target = fresh_target()
        log = []
        with pytest.warns(DeprecationWarning, match="deployed"):
            context = deployed(make_tagger("a", log), [Target])
        with context:
            Target().op()
        assert log == ["a"]
        assert not hasattr(Target.__dict__["op"], "__woven__")


class TestDeployedRollback:
    """Regression for the `deployed` context manager's exception path.

    Before the DeploymentSet rewrite, an exception inside the block ran a
    *strict* undeploy: if some other deployment had re-woven the class in
    the meantime, the member revert raised, the introductions were never
    reverted — and the user's exception was replaced by a WeavingError.
    """

    def _grafting_aspect(self):
        class Grafting(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                pass

            def introductions(self):
                return [Introduction("Target", "grafted", lambda self: "extra")]

        return Grafting()

    def test_exception_rolls_back_introductions_despite_interference(self):
        Target = fresh_target()
        interferer = WeaverRuntime("interferer")
        with pytest.warns(DeprecationWarning):
            context = deployed(self._grafting_aspect(), [Target])
        with pytest.raises(ValueError, match="user error"):
            with context:
                assert Target().grafted() == "extra"
                # A later deployment by someone else makes our member
                # non-LIFO-revertible...
                interference = interferer.deploy(make_tagger("i", []), [Target])
                raise ValueError("user error")
        # ...yet the introduction is gone and the *user's* exception won.
        assert not hasattr(Target, "grafted")
        interferer.undeploy(interference)

    def test_clean_exit_still_undeploys_strictly(self):
        Target = fresh_target()
        interferer = WeaverRuntime("interferer")
        with pytest.warns(DeprecationWarning):
            context = deployed(self._grafting_aspect(), [Target])
        with pytest.raises(WeavingError, match="re-woven"):
            with context:
                interference = interferer.deploy(make_tagger("i", []), [Target])
        # Strictness preserved on the no-exception path: the caller hears
        # about the interleaving instead of silently losing wrappers.
        interferer.undeploy(interference)


class TestVectorizedShadowScan:
    def test_scan_matches_member_semantics(self):
        class Base:
            def base_method(self):
                return 1

            def overridden(self):
                return "base"

        class Sub(Base):
            rate = 1.5

            def overridden(self):
                return "sub"

            def own_method(self):
                return 2

            @staticmethod
            def a_static():
                return 3

            @classmethod
            def a_class(cls):
                return 4

            @property
            def a_property(self):
                return 5

            def _private(self):
                return 6

        shadows = {s.name: s for s in _scan_method_shadows(Sub)}
        # Plain functions only — no descriptors, no data attributes.
        assert set(shadows) == {"base_method", "overridden", "own_method", "_private"}
        assert shadows["base_method"].inherited
        assert not shadows["overridden"].inherited
        assert shadows["overridden"].original is Sub.__dict__["overridden"]
        assert shadows["base_method"].original is Base.__dict__["base_method"]

    def test_scan_is_name_sorted(self):
        class Zed:
            def zeta(self):
                pass

            def alpha(self):
                pass

            def mid(self):
                pass

        names = [s.name for s in _scan_method_shadows(Zed)]
        assert names == sorted(names)

    def test_non_function_override_hides_base_function(self):
        class Base:
            def op(self):
                return 1

        class Sub(Base):
            op = "not callable"

        assert all(s.name != "op" for s in _scan_method_shadows(Sub))


class TestBatchScansFreshAfterUnweave:
    """Regression: a set's derived scans must not outlive an undeploy.

    The batch view caches post-weave scans derived from installed
    wrappers; once the set unweaves anything, those scans describe dead
    wrappers, and a later add() planning from them would weave over — and
    thereby resurrect — undeployed advice.
    """

    def test_add_after_partial_undeploy_plans_fresh(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        tx = runtime.transaction([Target])
        first = tx.add(make_tagger("a", log))
        tx.undeploy([first])
        tx.add(make_tagger("b", log))
        log.clear()
        Target().op()
        assert log == ["b"]  # 'a' must not be resurrected
        tx.undeploy()
        assert Target().op() == "op"

    def test_add_after_full_undeploy_plans_fresh(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        tx = runtime.transaction([Target])
        tx.add(make_tagger("a", log))
        tx.undeploy()
        tx.add(make_tagger("b", log))
        log.clear()
        Target().op()
        assert log == ["b"]
        tx.undeploy()

    def test_add_after_rollback_plans_fresh(self):
        Target = fresh_target()
        log = []
        runtime = WeaverRuntime()
        tx = runtime.transaction([Target])
        tx.add(make_tagger("a", log))
        tx.rollback()
        tx.add(make_tagger("b", log))
        log.clear()
        Target().op()
        assert log == ["b"]
        tx.undeploy()
