"""Code-generated wrappers: pooling, residue indices, batch planning.

The full chain-semantics matrix lives in ``test_compiled_chain.py`` (it
runs against both wrapper tiers); this module pins what is *specific* to
the codegen tier — that wrappers really are generated, that the per-shadow
join point pool reuses instances without leaking state between calls or
across undeploy, that class-settled residues are memoized per runtime
class instead of re-evaluated per call, and that ``deploy_all`` plans a
whole batch from one shadow scan per class.
"""

import pytest

from repro.aop import (
    Aspect,
    JoinPointKind,
    JoinPointPool,
    Weaver,
    after_returning,
    around,
    before,
    codegen_enabled,
    deployed,
    execution,
    target,
)
from repro.aop.pointcut import KindedPattern, Not
import repro.aop.weaver as weaver_mod


@pytest.fixture(autouse=True)
def _codegen_on(monkeypatch):
    monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")
    # This suite asserts the *generated wrapper* surface (sources, pools,
    # metadata); the monitor tier — auto-on under 3.12+ — would intercept
    # eligible observation advice with no wrapper to inspect at all.
    monkeypatch.setenv("REPRO_AOP_MONITOR", "0")


def fresh_target():
    class Target:
        def op(self, *args, **kwargs):
            return (args, kwargs)

    return Target


class TestEscapeHatch:
    def test_default_is_enabled(self):
        assert codegen_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "NO", " Off "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", value)
        assert not codegen_enabled()

    def test_wrappers_generated_only_when_enabled(self, monkeypatch):
        Target = fresh_target()

        class A(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                pass

        with deployed(A(), [Target]):
            assert hasattr(Target.__dict__["op"], "__codegen_source__")
            assert hasattr(Target.__dict__["op"], "__joinpoint_pool__")
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "0")
        with deployed(A(), [Target]):
            assert not hasattr(Target.__dict__["op"], "__codegen_source__")
        assert not hasattr(Target.__dict__["op"], "__woven__")


class TestJoinPointPooling:
    def test_sequential_calls_reuse_the_pooled_joinpoint(self):
        Target = fresh_target()
        seen = []

        class A(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                seen.append((id(jp), jp.args, dict(jp.kwargs)))

        with deployed(A(), [Target]):
            t = Target()
            t.op(1)
            t.op(2, x=3)
        # Same instance both times (the pool), never stale arguments.
        assert seen[0][0] == seen[1][0]
        assert seen[0][1:] == ((1,), {})
        assert seen[1][1:] == ((2,), {"x": 3})

    def test_released_joinpoint_is_scrubbed(self):
        Target = fresh_target()
        captured = []

        class A(Aspect):
            @after_returning("execution(Target.op)")
            def keep(self, jp):
                captured.append(jp)

        with deployed(A(), [Target]):
            t = Target()
            t.op("payload", key="value")
            jp = captured[0]
            # During the call the advice saw real state; afterwards the
            # released instance holds no references from that call.
            assert jp.target is None
            assert jp.args == ()
            assert jp.kwargs is None
            assert jp.result is None
            assert jp.value is None

    def test_advice_assigned_value_does_not_leak_into_next_call(self):
        Target = fresh_target()
        seen = []

        class A(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                seen.append(jp.value)
                jp.value = object()  # anything advice parks on the slot

        with deployed(A(), [Target]):
            t = Target()
            t.op()
            t.op()
        # The second (pool-reused) join point must not carry the first
        # call's value.
        assert seen == [None, None]

    def test_reentrant_calls_get_distinct_joinpoints(self):
        class Target:
            def op(self, depth):
                if depth:
                    return self.op(depth - 1) + 1
                return 0

        live = []

        class A(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                live.append((id(jp), jp.args))

        with deployed(A(), [Target]):
            assert Target().op(2) == 2
        identities = [entry[0] for entry in live]
        assert len(set(identities)) == 3  # nesting cannot share an instance
        assert [entry[1] for entry in live] == [(2,), (1,), (0,)]

    def test_state_does_not_leak_across_undeploy(self):
        Target = fresh_target()
        seen = []

        class A(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                seen.append(jp.args)

        weaver = Weaver()
        deployment = weaver.deploy(A(), [Target])
        Target().op("first")
        weaver.undeploy(deployment)
        assert Target().op("plain") == (("plain",), {})  # original restored
        deployment = weaver.deploy(A(), [Target])
        Target().op("second")
        weaver.undeploy(deployment)
        assert seen == [("first",), ("second",)]

    def test_pool_acquire_release_contract(self):
        pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, "op", cap=2)
        holder = object()
        jp = pool.acquire(holder, (1,), {"a": 2})
        assert jp.kind is JoinPointKind.METHOD_EXECUTION
        assert jp.name == "op"
        assert jp.target is holder and jp.cls is object
        assert jp.args == (1,) and jp.kwargs == {"a": 2}
        pool.release(jp)
        assert pool.free == [jp]
        assert jp.target is None and jp.kwargs is None
        # The cap bounds the free list.
        extras = [pool.blank() for _ in range(3)]
        for item in extras:
            pool.release(item)
        assert len(pool.free) <= 2

    def test_frame_pushed_joinpoints_are_never_pooled(self):
        """A stored ``current_stack()`` must stay intact after the call —
        dynamic-residue wrappers therefore allocate, not pool."""
        from repro.aop import current_stack

        class Node:
            def render(self):
                return "node"

        stacks = []

        class A(Aspect):
            @before(execution("Node.render") & target(Node))
            def keep(self, jp):
                stacks.append(current_stack())

        with deployed(A(), [Node]):
            node = Node()
            node.render()
            node.render()
        first, second = stacks
        # Distinct frame instances per call, and the captured frames still
        # carry their call's state (nothing scrubbed or recycled).
        assert first[0] is not second[0]
        assert first[0].cls is Node and first[0].name == "render"
        assert second[0].cls is Node and second[0].name == "render"

    def test_around_advice_pools_the_base_joinpoint(self):
        Target = fresh_target()
        ids = []

        class A(Aspect):
            @around("execution(Target.op)")
            def wrap(self, jp):
                ids.append(id(jp))
                return jp.proceed()

        with deployed(A(), [Target]):
            t = Target()
            assert t.op(1) == ((1,), {})
            assert t.op(2) == ((2,), {})
        # The ProceedingJoinPoint is per-call, but the pooled base join
        # point behind it must not leak state between the calls (results
        # above prove the arguments replayed correctly).
        assert len(ids) == 2


class _CountingExec(KindedPattern):
    """An execution pointcut counting shadow evaluations."""

    calls = 0

    def matches_shadow(self, cls, name, kind):
        type(self).calls += 1
        return super().matches_shadow(cls, name, kind)


class TestResidueMaskIndex:
    def test_class_settled_residue_evaluated_once_per_class(self):
        class Node:
            def render(self):
                return "node"

        class Painting(Node):
            pass

        counting = _CountingExec("Painting.*", JoinPointKind.METHOD_EXECUTION)
        _CountingExec.calls = 0

        class A(Aspect):
            @before(execution("Node.render") & ~counting)
            def note(self, jp):
                pass

        with deployed(A(), [Node]):
            node, painting = Node(), Painting()
            for _ in range(10):
                node.render()
                painting.render()
            after_warmup = _CountingExec.calls
            for _ in range(50):
                node.render()
                painting.render()
            # The negation's shadow re-evaluation is settled per runtime
            # class, not per call.
            assert _CountingExec.calls == after_warmup

    def test_class_settled_negation_still_correct(self):
        log = []

        class Node:
            def render(self):
                return "node"

        class Painting(Node):
            pass

        class A(Aspect):
            @before("execution(Node.render) && !execution(Painting.*)")
            def note(self, jp):
                log.append(type(jp.target).__name__)

        with deployed(A(), [Node]):
            Node().render()
            Painting().render()
            Node().render()
        assert log == ["Node", "Node"]

    def test_conjunction_splits_class_and_call_parts(self):
        class Node:
            def render(self):
                return "node"

        class Painting(Node):
            pass

        pointcut = execution("Node.render") & ~execution("Painting.*") & target(Node)
        class_part, call_part = pointcut.residue_parts()
        assert class_part is not None and isinstance(class_part, Not)
        assert call_part is not None
        jp = type(
            "FakeJp",
            (),
            {"cls": Node, "name": "render", "kind": JoinPointKind.METHOD_EXECUTION},
        )()
        assert class_part.matches_dynamic(jp)
        jp.cls = Painting
        assert not class_part.matches_dynamic(jp)

    def test_dynamic_target_residue_filters_per_call(self):
        log = []

        class Node:
            def render(self):
                return "node"

        class Painting(Node):
            pass

        class A(Aspect):
            @before(execution("Node.render") & target(Painting))
            def note(self, jp):
                log.append(type(jp.target).__name__)

        with deployed(A(), [Node]):
            Node().render()
            Painting().render()
        assert log == ["Painting"]


class TestSingleScanBatchDeploy:
    def _counting_scan(self, monkeypatch):
        calls = []
        real = weaver_mod._scan_method_shadows

        def counting(cls):
            calls.append(cls)
            return real(cls)

        monkeypatch.setattr(weaver_mod, "_scan_method_shadows", counting)
        return calls

    def test_deploy_all_scans_each_class_once(self, monkeypatch):
        class Alpha:
            def op(self):
                return "alpha"

        class Beta:
            def op(self):
                return "beta"

        def make(pattern):
            class A(Aspect):
                @before(pattern)
                def note(self, jp):
                    pass

            return A()

        weaver_mod.shadow_index.clear()
        calls = self._counting_scan(monkeypatch)
        weaver = Weaver()
        weaver.deploy_all(
            [make("execution(Alpha.op)"), make("execution(Beta.op)"),
             make("execution(*.op)")],
            [Alpha, Beta],
        )
        try:
            assert sorted(calls, key=lambda cls: cls.__name__) == [Alpha, Beta]
        finally:
            weaver.undeploy_all()

    def test_batch_nesting_matches_sequential(self):
        def build(deploy_batch):
            class Target:
                def op(self):
                    log.append("target")

            log = []

            def make(tag):
                class A(Aspect):
                    @around("execution(Target.op)")
                    def wrap(self, jp, _tag=tag):
                        log.append(f"enter:{_tag}")
                        try:
                            return jp.proceed()
                        finally:
                            log.append(f"exit:{_tag}")

                return A()

            weaver = Weaver()
            aspects = [make("one"), make("two"), make("three")]
            if deploy_batch:
                weaver.deploy_all(aspects, [Target])
            else:
                for aspect in aspects:
                    weaver.deploy(aspect, [Target])
            Target().op()
            weaver.undeploy_all()
            Target().op()
            return log

        assert build(deploy_batch=True) == build(deploy_batch=False)

    def test_batch_base_and_subclass_targets_stay_consistent(self):
        log = []

        class Base:
            def op(self):
                return "base"

        class Sub(Base):
            pass

        def make(pattern, tag):
            class A(Aspect):
                @before(pattern)
                def note(self, jp, _tag=tag):
                    log.append(_tag)

            return A()

        weaver = Weaver()
        weaver.deploy_all(
            [make("execution(Base.op)", "A1"), make("execution(Sub.op)", "A2")],
            [Base, Sub],
        )
        try:
            Sub().op()
        finally:
            weaver.undeploy_all()
        # Both aspects advise, later wraps earlier: before advice of the
        # later (outer) deployment runs first.
        assert log == ["A2", "A1"]
        assert Sub().op() == "base"
        assert log == ["A2", "A1"]

    def test_deploy_all_rolls_back_on_mid_batch_failure(self):
        from repro.aop.errors import WeavingError

        class Target:
            def op(self):
                return "base"

        original = Target.__dict__["op"]

        class Good(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                pass

        class Typo(Aspect):
            @before("execution(Target.no_such_method)")
            def nope(self, jp):
                pass

        weaver = Weaver()
        with pytest.raises(WeavingError):
            weaver.deploy_all([Good(), Typo()], [Target])
        # The earlier aspect must not stay woven: the caller never got a
        # deployment handle to undeploy it with.
        assert Target.__dict__["op"] is original
        assert weaver.deployments == []

    def test_failing_deploy_reverts_its_partial_introductions(self):
        from repro.aop import Introduction
        from repro.aop.errors import IntroductionError

        class Target:
            def op(self):
                return 1

            def taken(self):
                return "existing"

        class Good(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                pass

        class PartialIntro(Aspect):
            def introductions(self):
                return [
                    Introduction("Target", "fresh", lambda self: "new"),
                    # Clashes with an existing member: apply() raises after
                    # "fresh" was already installed.
                    Introduction("Target", "taken", lambda self: "clash"),
                ]

        weaver = Weaver()
        with pytest.raises(IntroductionError):
            weaver.deploy_all([Good(), PartialIntro()], [Target])
        # Neither the failing aspect's partial introductions nor the
        # earlier aspect survive: the caller has no handles to undo them.
        assert not hasattr(Target, "fresh")
        assert not hasattr(Target.__dict__["op"], "__woven__")
        assert Target().taken() == "existing"
        assert weaver.deployments == []

    def test_batch_with_introduction_falls_back_to_rescan(self):
        from repro.aop import Introduction

        log = []

        class Target:
            def op(self):
                return 1

        class Introducer(Aspect):
            def introductions(self):
                return [Introduction("Target", "ping", lambda self: "pong")]

            @before("execution(Target.ping)")
            def on_ping(self, jp):
                log.append("ping")

        class OnPing(Aspect):
            @before("execution(Target.ping)")
            def also(self, jp):
                log.append("also")

        weaver = Weaver()
        weaver.deploy_all([Introducer(), OnPing()], [Target])
        try:
            assert Target().ping() == "pong"
        finally:
            weaver.undeploy_all()
        assert sorted(log) == ["also", "ping"]
        assert not hasattr(Target, "ping")


class TestGeneratedWrapperMetadata:
    def test_wrapper_preserves_function_identity_surface(self):
        class Target:
            def op(self):
                """The docstring."""
                return 1

        class A(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                pass

        with deployed(A(), [Target]):
            wrapper = Target.__dict__["op"]
            assert wrapper.__name__ == "op"
            assert wrapper.__doc__ == "The docstring."
            assert wrapper.__woven__
            assert wrapper.__woven_original__ is wrapper.__wrapped__
            assert "def wrapper(self, *args, **kwargs):" in wrapper.__codegen_source__

    def test_exceptionless_chains_generate_no_handler(self):
        class Target:
            def op(self):
                return 1

        class A(Aspect):
            @before("execution(Target.op)")
            def note(self, jp):
                pass

        with deployed(A(), [Target]):
            source = Target.__dict__["op"].__codegen_source__
        assert "except Exception" not in source


class TestMarkerSlotSharing:
    """Scoped marker templates compile once per advice shape, not per scope.

    The marker attribute name is per-scope; session scopes are created per
    connected user, so a per-scope compile would tax session churn with a
    parse each.  The template renders a fixed marker slot instead and the
    real marker is retargeted into a cheap clone of the compiled code.
    """

    def _scoped_pair(self):
        from repro.aop import InstanceScope, WeaverRuntime

        Target = fresh_target()

        def make_aspect():
            class Trail(Aspect):
                def __init__(self):
                    self.seen = []

                @before("execution(Target.op)")
                def note(self, jp):
                    self.seen.append(jp.target)

            return Trail()

        runtime = WeaverRuntime("marker-slot-test")
        return runtime, Target, make_aspect

    def test_second_scope_reuses_the_compiled_shape(self):
        runtime, Target, make_aspect = self._scoped_pair()
        one, two = Target(), Target()
        with runtime.transaction([Target]) as tx:
            tx.add(make_aspect(), instances=[one])
            compiled_once = runtime.codegen_cache.sources_compiled
            retargets = runtime.codegen_cache.markers_retargeted
            tx.add(make_aspect(), instances=[two])
            stats = runtime.codegen_cache.stats()
            assert stats["sources_compiled"] == compiled_once
            assert stats["compile_hits"] >= 1
            assert stats["markers_retargeted"] > retargets
            tx.undeploy()

    def test_each_scope_dispatches_on_its_own_marker(self):
        from repro.aop import InstanceScope

        runtime, Target, make_aspect = self._scoped_pair()
        one, two, outsider = Target(), Target(), Target()
        scope_a, scope_b = InstanceScope([one]), InstanceScope([two])
        a, b = make_aspect(), make_aspect()
        with runtime.transaction([Target]) as tx:
            tx.add(a, instances=scope_a)
            tx.add(b, instances=scope_b)
            one.op()
            two.op()
            outsider.op()
            assert a.seen == [one]
            assert b.seen == [two]
            # The recorded source names the scope's *real* marker (the
            # compiled slot was retargeted), so inspection stays faithful.
            wrapper = Target.__dict__["op"]
            assert scope_b.attr in wrapper.__codegen_source__
            assert "_aop_marker_slot" not in wrapper.__codegen_source__
            tx.undeploy()

    def test_session_churn_never_recompiles(self):
        runtime, Target, make_aspect = self._scoped_pair()
        with runtime.transaction([Target]) as tx:
            tx.add(make_aspect(), instances=[Target()])
            compiled = runtime.codegen_cache.sources_compiled
            for _ in range(5):
                instance = Target()
                aspect = make_aspect()
                deployment = tx.add(aspect, instances=[instance])
                instance.op()
                assert aspect.seen == [instance]
                tx.undeploy([deployment])
            assert runtime.codegen_cache.sources_compiled == compiled
            tx.undeploy()
