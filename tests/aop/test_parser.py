"""Tests for the textual pointcut language."""

import pytest

from repro.aop import JoinPointKind, PointcutSyntaxError, parse_pointcut

EXEC = JoinPointKind.METHOD_EXECUTION


class Node:
    pass


class Index:
    pass


class TestPrimitives:
    def test_execution(self):
        pc = parse_pointcut("execution(Node.render)")
        assert pc.matches_shadow(Node, "render", EXEC)

    def test_quoted_pattern(self):
        pc = parse_pointcut("execution('Node.render')")
        assert pc.matches_shadow(Node, "render", EXEC)

    def test_get_and_set(self):
        assert parse_pointcut("get(Node.pos)").matches_shadow(
            Node, "pos", JoinPointKind.FIELD_GET
        )
        assert parse_pointcut("set(Node.pos)").matches_shadow(
            Node, "pos", JoinPointKind.FIELD_SET
        )

    def test_within(self):
        assert parse_pointcut("within(Node)").matches_shadow(Node, "anything", EXEC)

    def test_target_with_builtin_type(self):
        pc = parse_pointcut("target(str)")
        assert pc.has_dynamic_test

    def test_target_with_user_type(self):
        pc = parse_pointcut("target(Node)", types={"Node": Node})
        assert pc.matches_shadow(Node, "render", EXEC)

    def test_args_with_types(self):
        pc = parse_pointcut("args(str, int)")
        assert pc.has_dynamic_test

    def test_unknown_type_rejected(self):
        with pytest.raises(PointcutSyntaxError):
            parse_pointcut("target(Mystery)")


class TestOperators:
    def test_and(self):
        pc = parse_pointcut("execution(Node.*) && !execution(*.render)")
        assert pc.matches_shadow(Node, "as_html", EXEC)
        assert not pc.matches_shadow(Node, "render", EXEC)

    def test_or(self):
        pc = parse_pointcut("execution(Node.a) || execution(Index.b)")
        assert pc.matches_shadow(Node, "a", EXEC)
        assert pc.matches_shadow(Index, "b", EXEC)

    def test_precedence_and_binds_tighter(self):
        # a || b && c parses as a || (b && c)
        pc = parse_pointcut("execution(Node.a) || execution(Index.*) && execution(*.b)")
        assert pc.matches_shadow(Node, "a", EXEC)
        assert pc.matches_shadow(Index, "b", EXEC)
        assert not pc.matches_shadow(Index, "c", EXEC)

    def test_parentheses_override(self):
        pc = parse_pointcut(
            "(execution(Node.a) || execution(Index.a)) && execution(*.a)"
        )
        assert pc.matches_shadow(Node, "a", EXEC)
        assert not pc.matches_shadow(Node, "b", EXEC)

    def test_nested_cflow(self):
        pc = parse_pointcut("cflow(execution(Node.render) || execution(Index.show))")
        assert pc.has_dynamic_test

    def test_cflowbelow(self):
        pc = parse_pointcut("cflowbelow(execution(Node.render))")
        assert pc.has_dynamic_test

    def test_double_negation(self):
        pc = parse_pointcut("!!execution(Node.render)")
        assert pc.matches_shadow(Node, "render", EXEC)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "execution()",
            "execution(Node.render",
            "mystery(Node.render)",
            "execution(Node.a) &&",
            "execution(Node.a) extra",
            "&& execution(Node.a)",
            "cflow(execution(Node.a)",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(PointcutSyntaxError):
            parse_pointcut(text)

    def test_error_mentions_position_context(self):
        with pytest.raises(PointcutSyntaxError) as info:
            parse_pointcut("execution(Node.a) && mystery(b)")
        assert "mystery" in str(info.value)
