"""Tests for pointcut matching (static shadows and dynamic residues)."""

from repro.aop import (
    JoinPoint,
    JoinPointKind,
    args,
    execution,
    field_get,
    field_set,
    target,
    within,
)
from repro.aop.joinpoint import joinpoint_frame
from repro.aop.pointcut import cflow, cflowbelow


class Node:
    def render(self):
        pass

    def as_html(self):
        pass


class PaintingNode(Node):
    def render(self):
        pass


class Unrelated:
    def render(self):
        pass


EXEC = JoinPointKind.METHOD_EXECUTION


def jp_for(cls, name, kind=EXEC, target_obj=None, call_args=()):
    return JoinPoint(kind, target_obj or cls(), cls, name, tuple(call_args), {})


class TestExecutionPatterns:
    def test_exact_match(self):
        assert execution("Node.render").matches_shadow(Node, "render", EXEC)

    def test_member_wildcard(self):
        pc = execution("Node.*")
        assert pc.matches_shadow(Node, "render", EXEC)
        assert pc.matches_shadow(Node, "as_html", EXEC)

    def test_class_wildcard(self):
        assert execution("*.render").matches_shadow(Unrelated, "render", EXEC)

    def test_bare_member_means_any_class(self):
        assert execution("render").matches_shadow(Node, "render", EXEC)

    def test_subclass_matches_base_pattern(self):
        assert execution("Node.render").matches_shadow(PaintingNode, "render", EXEC)

    def test_base_does_not_match_subclass_pattern(self):
        assert not execution("PaintingNode.render").matches_shadow(Node, "render", EXEC)

    def test_qualified_module_pattern(self):
        pattern = f"{Node.__module__}.Node.render"
        assert execution(pattern).matches_shadow(Node, "render", EXEC)

    def test_kind_must_match(self):
        assert not execution("Node.render").matches_shadow(
            Node, "render", JoinPointKind.FIELD_GET
        )

    def test_partial_name_wildcards(self):
        assert execution("Node.as_*").matches_shadow(Node, "as_html", EXEC)
        assert not execution("Node.as_*").matches_shadow(Node, "render", EXEC)

    def test_no_dynamic_residue(self):
        assert not execution("Node.render").has_dynamic_test


class TestFieldPatterns:
    def test_get_kind(self):
        pc = field_get("Node.position")
        assert pc.matches_shadow(Node, "position", JoinPointKind.FIELD_GET)
        assert not pc.matches_shadow(Node, "position", JoinPointKind.FIELD_SET)

    def test_set_kind(self):
        pc = field_set("Node.position")
        assert pc.matches_shadow(Node, "position", JoinPointKind.FIELD_SET)


class TestWithin:
    def test_class_name(self):
        assert within("Node").matches_shadow(Node, "anything", EXEC)

    def test_module_pattern(self):
        assert within(f"{Node.__module__}").matches_shadow(Node, "render", EXEC)

    def test_non_matching(self):
        assert not within("Painting*").matches_shadow(Unrelated, "render", EXEC)


class TestTargetAndArgs:
    def test_target_dynamic(self):
        pc = target(PaintingNode)
        assert pc.matches_dynamic(jp_for(PaintingNode, "render"))
        assert not pc.matches_dynamic(jp_for(Unrelated, "render"))

    def test_target_static_plausibility(self):
        pc = target(PaintingNode)
        assert pc.matches_shadow(Node, "render", EXEC)  # a Node may be a PaintingNode
        assert not pc.matches_shadow(Unrelated, "render", EXEC)

    def test_args_match(self):
        pc = args(str, int)
        assert pc.matches_dynamic(jp_for(Node, "render", call_args=("x", 1)))
        assert pc.matches_dynamic(jp_for(Node, "render", call_args=("x", 1, "extra")))
        assert not pc.matches_dynamic(jp_for(Node, "render", call_args=("x",)))
        assert not pc.matches_dynamic(jp_for(Node, "render", call_args=(1, "x")))


class TestCombinators:
    def test_and(self):
        pc = execution("Node.*") & ~execution("*.as_html")
        assert pc.matches_shadow(Node, "render", EXEC)
        assert not pc.matches_shadow(Node, "as_html", EXEC)

    def test_or(self):
        pc = execution("Node.render") | execution("Unrelated.render")
        assert pc.matches_shadow(Node, "render", EXEC)
        assert pc.matches_shadow(Unrelated, "render", EXEC)
        assert not pc.matches_shadow(Node, "as_html", EXEC)

    def test_not_static(self):
        pc = ~execution("Node.render")
        assert not pc.matches_shadow(Node, "render", EXEC)
        assert pc.matches_shadow(Node, "as_html", EXEC)

    def test_not_with_dynamic_inner_keeps_shadow(self):
        pc = ~target(PaintingNode)
        # Cannot rule the shadow out statically...
        assert pc.matches_shadow(Node, "render", EXEC)
        # ...but the dynamic test decides per join point.
        assert not pc.matches_dynamic(jp_for(PaintingNode, "render"))
        assert pc.matches_dynamic(jp_for(Unrelated, "render"))

    def test_or_dynamic_requires_full_predicate(self):
        # Node.render || target(PaintingNode): an Unrelated.render join
        # point matches neither disjunct dynamically.
        pc = execution("Node.render") | target(PaintingNode)
        assert not pc.matches_dynamic(jp_for(Unrelated, "render"))
        assert pc.matches_dynamic(jp_for(PaintingNode, "as_html"))


class TestCflow:
    def test_cflow_sees_enclosing_frame(self):
        outer = jp_for(Node, "helper")
        inner = jp_for(Node, "render")
        pc = cflow(execution("Node.helper"))
        with joinpoint_frame(outer):
            with joinpoint_frame(inner):
                assert pc.matches_dynamic(inner)
        assert not pc.matches_dynamic(inner)

    def test_cflow_includes_current_join_point(self):
        jp = jp_for(Node, "render")
        pc = cflow(execution("Node.render"))
        with joinpoint_frame(jp):
            assert pc.matches_dynamic(jp)

    def test_cflowbelow_excludes_current(self):
        jp = jp_for(Node, "render")
        pc = cflowbelow(execution("Node.render"))
        with joinpoint_frame(jp):
            assert not pc.matches_dynamic(jp)

    def test_cflowbelow_matches_recursive_frames(self):
        first = jp_for(Node, "render")
        second = jp_for(Node, "render")
        pc = cflowbelow(execution("Node.render"))
        with joinpoint_frame(first), joinpoint_frame(second):
            assert pc.matches_dynamic(second)
