"""Module-level function weaving: scan, weave, rollback, introspection.

``ModuleShadow`` extends the weaver's target universe beyond classes:
module-level functions are shadows too, woven by rebinding the module
global and restored — transactionally — to the exact original function
object.  The suite covers the new target kind end to end (pointcut
matching against dotted module names, ``DeploymentSet`` rollback,
``woven_sites``/``stats`` introspection) and exercises the paper
workload: tracing and retry over ``xmlcore`` parsing and ``xlink``
resolution.
"""

import sys
import types

import pytest

import repro.xlink.resolver as resolver_mod
import repro.xmlcore.parser as parser_mod
from repro.aop import (
    Aspect,
    ModuleShadow,
    WeaverRuntime,
    WeavingError,
    before,
    execution,
    generator,
    module_shadows,
    proceed,
    return_,
)
from repro.xmlcore.errors import XmlSyntaxError

MONITOR_TIER = pytest.param(
    "monitor",
    marks=pytest.mark.skipif(
        sys.version_info < (3, 12),
        reason="monitor tier needs sys.monitoring (CPython 3.12+)",
    ),
)


@pytest.fixture(autouse=True, params=["codegen", "generic", MONITOR_TIER])
def _wrapper_tier(request, monkeypatch):
    monkeypatch.setenv("REPRO_AOP_CODEGEN", "0" if request.param == "generic" else "1")
    monkeypatch.setenv("REPRO_AOP_MONITOR", "1" if request.param == "monitor" else "0")
    return request.param


def synthetic_module(name="synthmod"):
    module = types.ModuleType(name)
    namespace = {"__name__": name}
    exec(
        "def double(x):\n"
        "    return x * 2\n"
        "def shout(text):\n"
        "    return text.upper()\n"
        "def _private(x):\n"
        "    return x\n",
        namespace,
    )
    for key, value in namespace.items():
        setattr(module, key, value)
    return module


class TestScan:
    def test_module_shadows_enumerates_public_functions(self):
        module = synthetic_module()
        shadows = module_shadows(module)
        assert [s.name for s in shadows] == ["double", "shout"]
        assert all(isinstance(s, ModuleShadow) for s in shadows)
        assert shadows[0].original is module.double
        assert shadows[0].cls is module

    def test_foreign_functions_are_not_shadows(self):
        module = synthetic_module()
        module.imported = len  # a builtin bound into the namespace
        assert "imported" not in [s.name for s in module_shadows(module)]


class TestPointcutMatching:
    @pytest.mark.parametrize(
        "pattern",
        [
            "synthmod.double",       # last module segment
            "*.double",              # any module
        ],
    )
    def test_execution_patterns_match_module_functions(self, pattern):
        module = synthetic_module()
        woven = []

        class A(Aspect):
            @before(execution(pattern))
            def observe(self, jp):
                woven.append((jp.cls.__name__, jp.name, jp.target))

        rt = WeaverRuntime("t")
        with rt.weave(module, A()):
            assert module.double(3) == 6
            assert module.shout("hi") == "HI"  # not advised
        assert woven == [("synthmod", "double", None)]

    def test_fully_dotted_pattern(self):
        woven = []

        class A(Aspect):
            @before(execution("repro.xlink.resolver.resolve_uri"))
            def observe(self, jp):
                woven.append(jp.args)

        rt = WeaverRuntime("t")
        with rt.weave(resolver_mod, A()):
            resolver_mod.resolve_uri("a/b.xml", "c.xml")
        assert woven == [("a/b.xml", "c.xml")]


class TestWeaveAndRestore:
    def test_weave_rebinds_and_undeploy_restores_identity(self):
        module = synthetic_module()
        original = module.double

        class A(Aspect):
            @before(execution("synthmod.double"))
            def observe(self, jp):
                pass

        rt = WeaverRuntime("t")
        handle = rt.weave(module, A())
        assert module.double is not original
        assert module.double.__woven__ is True
        assert module.double(2) == 4
        handle.undeploy()
        assert module.double is original

    def test_members_restriction_via_function_target(self):
        module = synthetic_module()
        sys.modules[module.__name__] = module
        try:
            original_shout = module.shout

            class A(Aspect):
                @before(execution("synthmod.*"))
                def observe(self, jp):
                    pass

            rt = WeaverRuntime("t")
            # Function target: only that function is woven even though
            # the pointcut matches every public function in the module.
            with rt.weave(module.double, A()):
                assert module.shout is original_shout
                assert module.double.__woven__ is True
        finally:
            del sys.modules[module.__name__]

    def test_transaction_rollback_restores_module_global(self):
        module = synthetic_module()
        original = module.double

        class A(Aspect):
            @before(execution("synthmod.double"))
            def observe(self, jp):
                pass

        rt = WeaverRuntime("t")
        with pytest.raises(RuntimeError, match="mid-flight"):
            with rt.transaction([module]) as tx:
                tx._add(A())
                assert module.double is not original
                raise RuntimeError("mid-flight")
        assert module.double is original
        assert rt.deployments == []

    def test_mixed_class_and_module_transaction_rolls_back_both(self):
        module = synthetic_module()

        class Renderer:
            def render(self):
                return "page"

        original_fn = module.double
        original_method = Renderer.__dict__["render"]

        class A(Aspect):
            @before(execution("synthmod.double") | execution("Renderer.render"))
            def observe(self, jp):
                pass

        rt = WeaverRuntime("t")
        with pytest.raises(RuntimeError):
            with rt.transaction([module, Renderer]) as tx:
                tx._add(A())
                assert module.double is not original_fn
                assert Renderer.__dict__["render"] is not original_method
                raise RuntimeError("abort")
        assert module.double is original_fn
        assert Renderer.__dict__["render"] is original_method

    def test_instances_scope_rejected_for_module_targets(self):
        module = synthetic_module()

        class A(Aspect):
            @before(execution("synthmod.double"))
            def observe(self, jp):
                pass

        rt = WeaverRuntime("t")
        with pytest.raises(WeavingError, match="instance"):
            rt._deploy(A(), [module], instances=[object()])


class TestIntrospection:
    def test_woven_sites_report_dotted_signatures(self):
        module = synthetic_module()

        class A(Aspect):
            @before(execution("synthmod.*"))
            def observe(self, jp):
                pass

        rt = WeaverRuntime("t")
        with rt.weave(module, A()):
            signatures = [site.signature for site in rt.woven_sites()]
            assert signatures == ["synthmod.double", "synthmod.shout"]
            tiers = {site.tier for site in rt.woven_sites()}
            assert tiers <= {"codegen", "generic"}
        assert rt.woven_sites() == []

    def test_stats_count_module_sites(self):
        module = synthetic_module()

        class A(Aspect):
            @before(execution("synthmod.double"))
            def observe(self, jp):
                pass

        rt = WeaverRuntime("t")
        with rt.weave(module, A()):
            stats = rt.stats()
            assert stats["woven_sites"] == 1
            assert sum(stats["tiers"].values()) == 1


class TestXmlWorkload:
    """The paper workload: tracing/retry over parse and resolution."""

    def test_tracing_and_retry_end_to_end(self):
        trace = []

        class Tracing(Aspect):
            @generator(
                execution("parser.parse") | execution("resolver.resolve_uri")
            )
            def trace_call(self, jp):
                trace.append(f"-> {jp.signature}")
                result = yield proceed
                trace.append(f"<- {jp.signature}")
                yield return_(result)

        failures = {"left": 2}

        class Faults(Aspect):
            @generator(execution("parser.parse"))
            def inject(self, jp):
                if failures["left"]:
                    failures["left"] -= 1
                    raise XmlSyntaxError("injected")
                result = yield proceed
                yield return_(result)

        class Retry(Aspect):
            @generator(execution("parser.parse"))
            def retry(self, jp):
                for _ in range(2):
                    try:
                        result = yield proceed
                    except XmlSyntaxError:
                        continue
                    yield return_(result)
                result = yield proceed
                yield return_(result)

        rt = WeaverRuntime("workload")
        original_parse = parser_mod.parse
        original_resolve = resolver_mod.resolve_uri
        with rt.weave([parser_mod.parse, resolver_mod.resolve_uri], Tracing()):
            doc = parser_mod.parse("<a><b/></a>")
            assert doc.root_element.name.local == "a"
            assert resolver_mod.resolve_uri("x/y.xml", "../z.xml") == "z.xml"
            # Retry wraps the injected faults (deployed later = outer).
            with rt.weave(parser_mod.parse, Faults()):
                with rt.weave(parser_mod.parse, Retry()):
                    doc = parser_mod.parse("<ok/>")
                    assert doc.root_element.name.local == "ok"
            assert failures["left"] == 0
        assert parser_mod.parse is original_parse
        assert resolver_mod.resolve_uri is original_resolve
        assert trace[:2] == [
            "-> repro.xmlcore.parser.parse",
            "<- repro.xmlcore.parser.parse",
        ]

    def test_only_named_function_is_woven_in_real_module(self):
        class A(Aspect):
            @before(execution("parser.*"))
            def observe(self, jp):
                pass

        original_parse_element = parser_mod.parse_element
        rt = WeaverRuntime("t")
        with rt.weave(parser_mod.parse, A()):
            assert parser_mod.parse_element is original_parse_element
            assert parser_mod.parse.__woven__ is True
