"""Tests for XPointer pointer parsing."""

import pytest

from repro.xpointer import (
    ElementSchemePart,
    ShorthandPointer,
    XPointerSchemePart,
    XPointerSyntaxError,
    XmlnsSchemePart,
    parse_pointer,
)


class TestShorthand:
    def test_bare_ncname(self):
        pointer = parse_pointer("guitar")
        assert pointer.is_shorthand
        assert pointer.shorthand == ShorthandPointer("guitar")

    def test_whitespace_trimmed(self):
        assert parse_pointer("  guitar ").shorthand.name == "guitar"

    def test_colon_rejected_in_shorthand(self):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer("x:y")

    def test_empty_rejected(self):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer("")


class TestElementScheme:
    def test_id_only(self):
        (part,) = parse_pointer("element(guitar)").parts
        assert part == ElementSchemePart("guitar", ())

    def test_id_with_child_sequence(self):
        (part,) = parse_pointer("element(guitar/1/2)").parts
        assert part == ElementSchemePart("guitar", (1, 2))

    def test_rooted_child_sequence(self):
        (part,) = parse_pointer("element(/1/3)").parts
        assert part == ElementSchemePart(None, (1, 3))

    @pytest.mark.parametrize("bad", ["element()", "element(/0)", "element(id/x)",
                                     "element(1bad)", "element(id//2)"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer(bad)


class TestXPointerScheme:
    def test_expression_captured_verbatim(self):
        (part,) = parse_pointer("xpointer(//painting[@id='x'])").parts
        assert part == XPointerSchemePart("//painting[@id='x']")

    def test_nested_parentheses_balanced(self):
        (part,) = parse_pointer("xpointer(id('guitar'))").parts
        assert part.expression == "id('guitar')"

    def test_circumflex_escapes(self):
        (part,) = parse_pointer("xpointer(a^)b^^c)").parts
        assert part.expression == "a)b^c"

    def test_bad_escape_rejected(self):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer("xpointer(a^b)")

    def test_unbalanced_rejected(self):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer("xpointer(id('x')")

    def test_empty_expression_rejected(self):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer("xpointer()")


class TestMultiPart:
    def test_parts_in_order(self):
        pointer = parse_pointer("xmlns(m=urn:museum)xpointer(//m:painting)element(g)")
        kinds = [type(p).__name__ for p in pointer.parts]
        assert kinds == ["XmlnsSchemePart", "XPointerSchemePart", "ElementSchemePart"]

    def test_whitespace_between_parts(self):
        pointer = parse_pointer("element(a)  element(b)")
        assert len(pointer.parts) == 2

    def test_xmlns_binding(self):
        (part,) = parse_pointer("xmlns(m=urn:museum)").parts
        assert part == XmlnsSchemePart("m", "urn:museum")

    def test_xmlns_without_equals_rejected(self):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer("xmlns(m)")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(XPointerSyntaxError):
            parse_pointer("string-range(x)")

    def test_round_trip_str(self):
        text = "xmlns(m=urn:x)xpointer(//m:p)"
        assert str(parse_pointer(text)) == text
