"""Tests for XPointer evaluation against documents."""

import pytest

from repro.xmlcore import parse
from repro.xpointer import (
    XPointerResolutionError,
    resolve,
    resolve_all,
)

DOC = parse(
    """
<museum>
  <painter id="picasso">
    <name>Pablo Picasso</name>
    <painting id="guitar"><title>Guitar</title><year>1913</year></painting>
    <painting id="guernica"><title>Guernica</title></painting>
  </painter>
  <hall xml:id="hall-1"><capacity>120</capacity></hall>
</museum>
"""
)


class TestShorthand:
    def test_resolves_plain_id(self):
        assert resolve(DOC, "guitar").name.local == "painting"

    def test_resolves_xml_id(self):
        assert resolve(DOC, "hall-1").name.local == "hall"

    def test_missing_id_is_empty(self):
        assert resolve_all(DOC, "nope") == []

    def test_strict_resolve_raises_on_missing(self):
        with pytest.raises(XPointerResolutionError):
            resolve(DOC, "nope")


class TestElementScheme:
    def test_id_anchor(self):
        assert resolve(DOC, "element(guitar)").get("id") == "guitar"

    def test_id_anchor_with_steps(self):
        el = resolve(DOC, "element(picasso/2/1)")
        assert el.text_content() == "Guitar"

    def test_rooted_sequence(self):
        el = resolve(DOC, "element(/1/1/2)")
        assert el.get("id") == "guitar"

    def test_rooted_sequence_must_start_at_1(self):
        assert resolve_all(DOC, "element(/2)") == []

    def test_step_beyond_children_is_empty(self):
        assert resolve_all(DOC, "element(guitar/9)") == []

    def test_missing_anchor_is_empty(self):
        assert resolve_all(DOC, "element(nope/1)") == []


class TestXPointerScheme:
    def test_id_function(self):
        assert resolve(DOC, "xpointer(id('guernica'))").get("id") == "guernica"

    def test_id_function_with_path(self):
        el = resolve(DOC, "xpointer(id('picasso')/painting[2])")
        assert el.get("id") == "guernica"

    def test_rooted_path(self):
        el = resolve(DOC, "xpointer(/museum/painter/name)")
        assert el.text_content() == "Pablo Picasso"

    def test_descendant_path(self):
        assert len(resolve_all(DOC, "xpointer(//painting)")) == 2

    def test_attribute_predicate(self):
        el = resolve(DOC, "xpointer(//painting[@id='guitar'])")
        assert el.find("year").text_content() == "1913"

    def test_ambiguous_strict_resolution_raises(self):
        with pytest.raises(XPointerResolutionError):
            resolve(DOC, "xpointer(//painting)")

    def test_namespace_binding(self):
        doc = parse('<m xmlns="urn:museum"><p id="x"/></m>')
        el = resolve(doc, "xmlns(mu=urn:museum)xpointer(//mu:p)")
        assert el.get("id") == "x"

    def test_first_matching_part_wins(self):
        el = resolve(DOC, "element(nope) element(guitar)")
        assert el.get("id") == "guitar"

    def test_earlier_part_shadows_later(self):
        el = resolve(DOC, "element(guernica) element(guitar)")
        assert el.get("id") == "guernica"
