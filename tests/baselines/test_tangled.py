"""Tests for the tangled baseline site (Figures 3–4 as generators)."""

import pytest

from repro.baselines import TangledMuseumSite, museum_fixture
from repro.xmlcore import parse


@pytest.fixture(scope="module")
def fixture():
    return museum_fixture()


class TestSiteShape:
    def test_page_inventory(self, fixture):
        pages = TangledMuseumSite(fixture, "index").build()
        assert len(pages) == 14
        assert "index.html" in pages
        assert "painter/picasso.html" in pages
        assert "painting/guitar.html" in pages

    def test_every_page_is_well_formed_xhtml(self, fixture):
        for access in ("index", "indexed-guided-tour"):
            for page in TangledMuseumSite(fixture, access).build().values():
                parse(page.html)  # raises on malformed markup

    def test_unknown_access_rejected(self, fixture):
        with pytest.raises(ValueError):
            TangledMuseumSite(fixture, "menu")


class TestFigure3Shape:
    def test_guitar_page_embeds_sibling_index(self, fixture):
        pages = TangledMuseumSite(fixture, "index").build()
        html = pages["painting/guitar.html"].html
        assert "Guernica" in html
        assert "Les Demoiselles" in html
        assert "<h1>Guitar</h1>" in html

    def test_index_page_has_no_tour_links(self, fixture):
        pages = TangledMuseumSite(fixture, "index").build()
        assert 'rel="next"' not in pages["painting/guitar.html"].html

    def test_navigation_is_interleaved_with_content(self, fixture):
        """The tangled property itself: anchors outside any <nav> region."""
        html = TangledMuseumSite(fixture, "index").build()["painting/guitar.html"].html
        assert "<nav" not in html
        assert "<a href=" in html


class TestFigure4Shape:
    def test_tour_links_ordered_by_year(self, fixture):
        pages = TangledMuseumSite(fixture, "indexed-guided-tour").build()
        guitar = pages["painting/guitar.html"].html
        assert 'rel="prev" href="../painting/avignon.html"' in guitar
        assert 'rel="next" href="../painting/guernica.html"' in guitar

    def test_first_of_tour_has_no_prev(self, fixture):
        pages = TangledMuseumSite(fixture, "indexed-guided-tour").build()
        assert 'rel="prev"' not in pages["painting/avignon.html"].html

    def test_last_of_tour_has_no_next(self, fixture):
        pages = TangledMuseumSite(fixture, "indexed-guided-tour").build()
        assert 'rel="next"' not in pages["painting/guernica.html"].html

    def test_singleton_contexts_gain_nothing(self, fixture):
        """Painters with ordered siblings only; the home/painter pages are
        identical across access structures — the change is confined to
        painting pages (which is still 9 files)."""
        before = TangledMuseumSite(fixture, "index").build()
        after = TangledMuseumSite(fixture, "indexed-guided-tour").build()
        assert before["index.html"].html == after["index.html"].html
        assert (
            before["painter/picasso.html"].html
            == after["painter/picasso.html"].html
        )


class TestProviderNormalization:
    def test_relative_links_resolve_across_directories(self, fixture):
        provider = TangledMuseumSite(fixture, "index").provider()
        page = provider.page("painting/guitar.html")
        painter_anchor = next(a for a in page.anchors if a.label == "Pablo Picasso")
        assert painter_anchor.href == "painter/picasso.html"

    def test_missing_page(self, fixture):
        from repro.navigation import NavigationError

        provider = TangledMuseumSite(fixture, "index").provider()
        with pytest.raises(NavigationError):
            provider.page("painting/ghost.html")
