"""Tests for the shared museum fixture and the synthetic generator."""

import pytest

from repro.baselines import (
    MUSEUM_PAINTERS,
    build_museum_schema,
    build_museum_store,
    build_navigational_schema,
    museum_fixture,
    synthetic_museum,
)


class TestPaperMuseum:
    def test_paper_paintings_present(self):
        store = build_museum_store()
        for painting_id in ("guitar", "guernica", "avignon"):
            assert store.get("Painting", painting_id)

    def test_painters_match_catalogue(self):
        store = build_museum_store()
        assert {p.entity_id for p in store.all("Painter")} == set(MUSEUM_PAINTERS)

    def test_movements_created_once(self):
        store = build_museum_store()
        names = [m.entity_id for m in store.all("Movement")]
        assert sorted(names) == ["cubism", "surrealism"]
        assert len(names) == len(set(names))

    def test_inverse_relationships_populated(self):
        store = build_museum_store()
        cubism = store.get("Movement", "cubism")
        works = {p.entity_id for p in store.related(cubism, "includes")}
        assert {"guitar", "guernica", "avignon", "violin", "clarinet"} == works

    def test_fixture_wires_everything(self):
        fixture = museum_fixture()
        fixture.nav.validate()
        assert len(fixture.contexts()) == 6  # 4 painters + 2 movements


class TestAccessParameter:
    def test_index_by_default(self):
        fixture = museum_fixture()
        context = fixture.contexts()["by-painter:picasso"]
        assert context.access_structure.kind == "Index"

    def test_igt_variant(self):
        fixture = museum_fixture("indexed-guided-tour")
        context = fixture.contexts()["by-painter:picasso"]
        assert context.access_structure.kind == "IndexedGuidedTour"

    def test_unknown_access_rejected(self):
        with pytest.raises(ValueError):
            build_navigational_schema(
                build_museum_schema(), painting_access="teleporter"
            )


class TestSyntheticMuseum:
    def test_shape(self):
        fixture = synthetic_museum(3, 4, n_movements=2)
        assert len(fixture.store.all("Painter")) == 3
        assert len(fixture.store.all("Painting")) == 12
        assert len(fixture.store.all("Movement")) == 2

    def test_every_painting_attributed(self):
        fixture = synthetic_museum(2, 3)
        for painting in fixture.store.all("Painting"):
            assert len(fixture.store.related(painting, "painted_by")) == 1

    def test_contexts_cover_every_painting(self):
        fixture = synthetic_museum(3, 5)
        by_painter = {
            name: ctx
            for name, ctx in fixture.contexts().items()
            if name.startswith("by-painter:")
        }
        members = sum(len(ctx) for ctx in by_painter.values())
        assert members == 15

    def test_deterministic(self):
        a = synthetic_museum(2, 2)
        b = synthetic_museum(2, 2)
        assert [e.entity_id for e in a.store.all("Painting")] == [
            e.entity_id for e in b.store.all("Painting")
        ]
