"""The weave-epoch page cache: keys, invalidation, fragment assembly.

The tentpole suite for the serving hot path's skeleton cache: the
:class:`PageCache` LRU itself, the epoch surface
(:attr:`WeaverRuntime.weave_epoch` and the per-audience snapshots on
:class:`AudienceServer`), cache hit/miss/bypass behaviour over the HTTP
front (including byte parity between a hit and the miss that installed
it), the ``REPRO_PAGE_CACHE=0`` escape hatch, and — the concurrency
bar — N session threads hammering one page while a mid-flight
``reconfigure`` bumps the epoch, under both wrapper tiers: nobody ever
observes a stale (pre-reconfigure) skeleton after the swap, and nobody
ever sees another session's breadcrumb fragment.
"""

import io
import threading

import pytest

from repro.aop import Aspect, WeaverRuntime, before
from repro.baselines import museum_fixture
from repro.navigation import (
    AudienceBundle,
    AudienceServer,
    CachedSkeleton,
    NavigationApp,
    PageCache,
    ServingConfig,
    page_cache_enabled,
)
from repro.web import TRAIL_SLOT, compose_page

VISITOR_CURATOR = [
    AudienceBundle("visitor", ("index", "guided-tour")),
    AudienceBundle("curator", ("index",)),
]

GUITAR = "PaintingNode/guitar.html"


@pytest.fixture()
def fixture():
    return museum_fixture()


@pytest.fixture(params=["codegen", "generic"])
def wrapper_tier(request, monkeypatch):
    monkeypatch.setenv(
        "REPRO_AOP_CODEGEN", "1" if request.param == "codegen" else "0"
    )
    return request.param


def call(app, path, *, method="GET", sid=None, body=None, bypass=False):
    payload = body.encode() if isinstance(body, str) else (body or b"")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(payload)),
        "wsgi.input": io.BytesIO(payload),
    }
    if sid is not None:
        environ["HTTP_X_REPRO_SESSION"] = sid
    if bypass:
        environ["HTTP_X_REPRO_CACHE"] = "bypass"
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = headers

    text = b"".join(app(environ, start_response)).decode("utf-8")
    return int(captured["status"].split()[0]), dict(captured["headers"]), text


def _trail_block(page: str) -> str:
    """The breadcrumbs ``<nav>`` block, or ``""`` when the page has none."""
    start = page.find('class="breadcrumbs"')
    if start < 0:
        return ""
    end = page.find("</nav>", start)
    return page[start : end if end >= 0 else len(page)]


def entry(tag):
    return CachedSkeleton(skeleton=f"<s>{tag}</s>", title=tag, path=f"{tag}.html")


class TestPageCache:
    def test_get_put_and_counters(self):
        cache = PageCache(4)
        assert cache.get("a.html", 1) is None
        cache.put("a.html", 1, entry("a"))
        hit = cache.get("a.html", 1)
        assert hit is not None and hit.title == "a"
        # A different epoch is a different key entirely.
        assert cache.get("a.html", 2) is None
        assert cache.stats() == {
            "entries": 1,
            "max_entries": 4,
            "hits": 1,
            "misses": 2,
            "evictions": 0,
            "invalidations": 0,
        }

    def test_lru_eviction_prefers_least_recently_used(self):
        cache = PageCache(2)
        cache.put("a.html", 1, entry("a"))
        cache.put("b.html", 1, entry("b"))
        assert cache.get("a.html", 1) is not None  # refresh a
        cache.put("c.html", 1, entry("c"))  # evicts b, not a
        assert cache.get("b.html", 1) is None
        assert cache.get("a.html", 1) is not None
        assert cache.stats()["evictions"] == 1

    def test_drop_stale_reclaims_superseded_epochs(self):
        cache = PageCache(8)
        cache.put("a.html", 1, entry("a"))
        cache.put("b.html", 1, entry("b"))
        cache.put("c.html", 3, entry("c"))
        assert cache.drop_stale(3) == 2
        assert len(cache) == 1
        assert cache.get("c.html", 3) is not None
        assert cache.stats()["invalidations"] == 2

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            PageCache(0)


class TestWeaveEpoch:
    def test_runtime_epoch_advances_on_deploy_and_undeploy(self):
        class Probe:
            def ping(self):
                return 1

        class ProbeAspect(Aspect):
            @before("execution(Probe.ping)")
            def note(self, jp):
                pass

        runtime = WeaverRuntime("epoch-probe")
        e0 = runtime.weave_epoch
        deployment = runtime.deploy(ProbeAspect(), [Probe])
        assert runtime.weave_epoch > e0
        e1 = runtime.weave_epoch
        runtime.undeploy(deployment)
        assert runtime.weave_epoch > e1
        assert runtime.stats()["weave_epoch"] == runtime.weave_epoch

    def test_reconfigure_bumps_only_the_target_audience(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            visitor_before = server.weave_epoch("visitor")
            curator_before = server.weave_epoch("curator")
            server.reconfigure("curator", ("indexed-guided-tour",))
            assert server.weave_epoch("curator") > curator_before
            assert server.weave_epoch("visitor") == visitor_before

    def test_session_scoped_deploys_leave_the_cache_warm(self, fixture):
        """A deploy that never touches the shared renderer keeps the epoch.

        Every new session deploys its breadcrumb tier into its own
        scope; if that bumped the audience epoch, each arrival would
        flush the whole audience cache.
        """
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            visitor_before = server.weave_epoch("visitor")
            with server.session_tier("visitor") as tier:
                tier.deploy(_trail_aspect())
                assert server.weave_epoch("visitor") == visitor_before

    def test_shared_renderer_in_scope_bumps_the_audience(self, fixture):
        from repro.aop import InstanceScope

        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            curator_before = server.weave_epoch("curator")
            visitor_before = server.weave_epoch("visitor")
            with server.session_tier("visitor") as tier:
                scope = InstanceScope([tier.renderer, server.renderer("visitor")])
                tier.deploy(_trail_aspect(), instances=scope)
                assert server.weave_epoch("visitor") > visitor_before
                assert server.weave_epoch("curator") == curator_before


def _trail_aspect():
    from repro.navigation import BreadcrumbAspect

    return BreadcrumbAspect(limit=4)


class TestCachedServing:
    def test_miss_then_hit_with_byte_parity(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            _, h1, first = call(app, f"/visitor/{GUITAR}", sid="a")
            _, h2, second = call(app, f"/visitor/{GUITAR}", sid="a")
            assert h1["X-Repro-Cache"] == "miss"
            assert h2["X-Repro-Cache"] == "hit"
            assert first == second
            assert server.page_cache("visitor").stats()["hits"] == 1
            app.close()

    def test_hit_still_advances_the_session_trail(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            call(app, "/visitor/index.html", sid="a")
            call(app, "/visitor/index.html", sid="b")  # hit for b
            _, h, page = call(app, f"/visitor/{GUITAR}", sid="b")
            # b's trail grew from the cache hit on the home page.
            assert 'rel="breadcrumb"' in page
            assert 'href="../index.html"' in page
            app.close()

    def test_sessions_never_see_each_others_fragments(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            call(app, "/visitor/PaintingNode/guernica.html", sid="a")
            _, _, a_page = call(app, f"/visitor/{GUITAR}", sid="a")
            _, h, b_page = call(app, f"/visitor/{GUITAR}", sid="b")
            assert h["X-Repro-Cache"] == "hit"
            # a's trail names a's history; b's hit carries no trail at
            # all (the skeleton's sibling links don't count — only the
            # breadcrumbs nav is session-variant).
            assert "guernica" in _trail_block(a_page)
            assert 'class="breadcrumbs"' not in b_page
            app.close()

    def test_bypass_header_forces_a_full_render(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            call(app, f"/visitor/{GUITAR}", sid="a")
            _, h, _ = call(app, f"/visitor/{GUITAR}", sid="a", bypass=True)
            assert h["X-Repro-Cache"] == "bypass"
            # The bypass render went through the session renderer and
            # never touched the cache counters.
            assert server.page_cache("visitor").stats()["hits"] == 0
            app.close()

    def test_reconfigure_invalidates_exactly_that_audience(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            call(app, f"/visitor/{GUITAR}", sid="a")
            call(app, f"/curator/{GUITAR}", sid="a")
            _, _, before_swap = call(app, f"/curator/{GUITAR}", sid="a")
            server.reconfigure("curator", ("indexed-guided-tour",))
            _, h, after_swap = call(app, f"/curator/{GUITAR}", sid="a")
            assert h["X-Repro-Cache"] == "miss"
            assert 'rel="next"' in after_swap  # the new stack, not a stale page
            assert before_swap != after_swap
            # The visitor's entry survived its neighbour's swap.
            _, h, _ = call(app, f"/visitor/{GUITAR}", sid="a")
            assert h["X-Repro-Cache"] == "hit"
            app.close()

    def test_escape_hatch_disables_the_tier(self, fixture, monkeypatch):
        monkeypatch.setenv("REPRO_PAGE_CACHE", "0")
        assert not page_cache_enabled()
        assert not ServingConfig().cache_active()
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            assert server.page_cache("visitor") is None
            _, h, _ = call(app, f"/visitor/{GUITAR}", sid="a")
            _, h2, _ = call(app, f"/visitor/{GUITAR}", sid="a")
            assert h["X-Repro-Cache"] == h2["X-Repro-Cache"] == "off"
            app.close()

    def test_config_switch_disables_the_tier(self, fixture):
        config = ServingConfig(cache_enabled=False)
        with AudienceServer(fixture, VISITOR_CURATOR, config=config) as server:
            app = NavigationApp(server)
            assert server.page_cache("visitor") is None
            _, h, _ = call(app, f"/visitor/{GUITAR}", sid="a")
            assert h["X-Repro-Cache"] == "off"
            app.close()

    def test_stats_surface_cache_counters_and_epoch(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            call(app, f"/visitor/{GUITAR}", sid="a")
            call(app, f"/visitor/{GUITAR}", sid="a")
            visitor = app.stats()["audiences"]["visitor"]
            assert visitor["weave_epoch"] == server.weave_epoch("visitor")
            assert visitor["cache"]["enabled"] is True
            assert visitor["cache"]["hits"] == 1
            assert visitor["cache"]["misses"] >= 1
            app.close()

    def test_compose_page_splices_the_slot(self):
        skeleton = f"<body><p>x</p>{TRAIL_SLOT}</body>"
        assert (
            compose_page(skeleton, "<nav>trail</nav>")
            == "<body><p>x</p><nav>trail</nav></body>"
        )
        assert compose_page(skeleton, "") == "<body><p>x</p></body>"


class TestConcurrentInvalidation:
    """The satellite bar: a mid-flight reconfigure under request load."""

    def test_no_stale_skeleton_and_no_fragment_bleed(self, fixture, wrapper_tier):
        sessions = [f"user{i}" for i in range(6)]
        own_page = {
            sid: page
            for sid, page in zip(
                sessions,
                (
                    "PaintingNode/guernica.html",
                    "PaintingNode/violin.html",
                    "PaintingNode/memory.html",
                    "PaintingNode/elephants.html",
                    "PaintingNode/harlequin.html",
                    "PaintingNode/guitar.html",
                ),
            )
        }
        own_basename = {
            sid: page.rsplit("/", 1)[1] for sid, page in own_page.items()
        }
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            errors: list[BaseException] = []
            swapped = threading.Event()
            start = threading.Barrier(len(sessions) + 1)

            def browse(sid: str) -> None:
                try:
                    start.wait(timeout=10)
                    for _ in range(20):
                        saw_swap = swapped.is_set()
                        status, _, home = call(app, "/curator/index.html", sid=sid)
                        assert status == 200
                        status, _, page = call(
                            app, f"/curator/{own_page[sid]}", sid=sid
                        )
                        assert status == 200
                        if saw_swap:
                            # The request began after the swap completed:
                            # a stale (pre-reconfigure) skeleton would
                            # miss the tour's next/prev links.
                            assert (
                                'rel="next"' in page or 'rel="prev"' in page
                            ), f"{sid} saw a stale skeleton after reconfigure"
                        # My trail must never name another session's page.
                        trail = _trail_block(home)
                        for other_sid, basename in own_basename.items():
                            if other_sid != sid:
                                assert basename not in trail, (
                                    f"{sid} saw {other_sid}'s fragment"
                                )
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=browse, args=(sid,)) for sid in sessions
            ]
            for thread in threads:
                thread.start()
            start.wait(timeout=10)
            # Mid-flight: give the curator the guided tour while every
            # session is hammering curator pages.
            server.reconfigure("curator", ("indexed-guided-tour",))
            swapped.set()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, errors[0]
            app.close()
