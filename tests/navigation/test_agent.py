"""Tests for the user-agent simulator over the tangled museum site."""

import pytest

from repro.baselines import TangledMuseumSite, museum_fixture
from repro.navigation import (
    CallableProvider,
    NavigationError,
    PageAnchor,
    PageView,
    UserAgent,
)


@pytest.fixture()
def index_agent():
    return UserAgent(TangledMuseumSite(museum_fixture(), "index").provider())


@pytest.fixture()
def tour_agent():
    return UserAgent(
        TangledMuseumSite(museum_fixture(), "indexed-guided-tour").provider()
    )


class TestBrowsing:
    def test_open_home(self, index_agent):
        page = index_agent.open("index.html")
        assert page.title == "The Museum"

    def test_click_by_label(self, index_agent):
        index_agent.open("index.html")
        page = index_agent.click("Pablo Picasso")
        assert page.uri == "painter/picasso.html"

    def test_relative_hrefs_resolved(self, index_agent):
        index_agent.open("index.html")
        index_agent.click("Pablo Picasso")
        page = index_agent.click("Guitar")
        assert page.uri == "painting/guitar.html"

    def test_missing_anchor_reports_alternatives(self, index_agent):
        index_agent.open("index.html")
        with pytest.raises(NavigationError) as info:
            index_agent.click("Nonexistent")
        assert "Pablo Picasso" in str(info.value)

    def test_missing_page_raises(self, index_agent):
        with pytest.raises(NavigationError):
            index_agent.open("ghost.html")

    def test_back_and_trail(self, index_agent):
        index_agent.open("index.html")
        index_agent.click("Salvador Dali")
        index_agent.back()
        assert index_agent.current.uri == "index.html"
        assert index_agent.trail() == ["index.html"]


class TestTourNavigation:
    def test_follow_rel_next(self, tour_agent):
        tour_agent.open("painting/avignon.html")
        assert tour_agent.follow_rel("next").uri == "painting/guitar.html"

    def test_index_site_has_no_next(self, index_agent):
        index_agent.open("painting/avignon.html")
        with pytest.raises(NavigationError):
            index_agent.follow_rel("next")

    def test_tour_chain_walks_in_year_order(self, tour_agent):
        tour_agent.open("painting/avignon.html")
        tour_agent.follow_rel("next")
        page = tour_agent.follow_rel("next")
        assert page.uri == "painting/guernica.html"
        with pytest.raises(NavigationError):
            tour_agent.follow_rel("next")  # end of tour

    def test_prev_rel(self, tour_agent):
        tour_agent.open("painting/guitar.html")
        assert tour_agent.follow_rel("prev").uri == "painting/avignon.html"


class TestCrawl:
    def test_whole_site_reachable_from_home(self, index_agent):
        pages = index_agent.crawl("index.html")
        # 1 home + 4 painters + 9 paintings
        assert len(pages) == 14

    def test_crawl_does_not_touch_history(self, index_agent):
        index_agent.open("index.html")
        index_agent.crawl("index.html")
        assert index_agent.trail() == ["index.html"]

    def test_every_anchor_resolves(self, tour_agent):
        pages = tour_agent.crawl("index.html")
        for page in pages.values():
            for anchor in page.anchors:
                assert anchor.href in pages, f"dangling link in {page.uri}"

    def test_crawl_page_budget(self, index_agent):
        with pytest.raises(NavigationError):
            index_agent.crawl("index.html", max_pages=3)


class TestCallableProvider:
    def test_adapts_function(self):
        def serve(uri: str) -> PageView:
            return PageView(uri=uri, anchors=[PageAnchor("loop", uri)])

        agent = UserAgent(CallableProvider(serve))
        agent.open("a.html")
        assert agent.click("loop").uri == "a.html"
