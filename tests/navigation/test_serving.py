"""The live multi-audience serving layer and its URI handling.

Covers the acceptance bar for instance-scoped serving: two audiences with
different access-structure stacks render concurrently from one process
over the shared renderer class (one runtime, one class scan), a
``reconfigure`` of one audience leaves the other's pages byte-identical,
and the lazy provider resolves rooted/explicitly-relative URI spellings
instead of raising.  The threaded smoke test drives both providers from
concurrent threads and asserts navigation never bleeds across audiences.
"""

import threading

import pytest

import repro.aop.weaver as weaver_mod
from repro.baselines import museum_fixture
from repro.core import PageRenderer, build_audience_sites, default_museum_spec
from repro.navigation import (
    AudienceBundle,
    AudienceServer,
    NavigationError,
    UserAgent,
    normalize_page_uri,
)


@pytest.fixture()
def fixture():
    return museum_fixture()


VISITOR_CURATOR = [
    AudienceBundle("visitor", ("index", "guided-tour")),
    AudienceBundle("curator", ("index",)),
]


class TestNormalizePageUri:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("index.html", "index.html"),
            ("/index.html", "index.html"),
            ("//index.html", "index.html"),
            ("./index.html", "index.html"),
            ("./PaintingNode/guitar.html", "PaintingNode/guitar.html"),
            ("/PaintingNode/guitar.html", "PaintingNode/guitar.html"),
            ("PainterNode/../PaintingNode/guitar.html", "PaintingNode/guitar.html"),
            ("", "index.html"),
            ("/", "index.html"),
            (".", "index.html"),
            # Percent-encoded spellings decode before the page-map lookup.
            ("PaintingNode%2Fguitar.html", "PaintingNode/guitar.html"),
            ("/PaintingNode/gu%69tar.html", "PaintingNode/guitar.html"),
            ("%2Findex.html", "index.html"),
            # Windows-style backslashes fold to forward slashes.
            ("PaintingNode\\guitar.html", "PaintingNode/guitar.html"),
            ("\\PaintingNode\\guitar.html", "PaintingNode/guitar.html"),
            ("rooms%5Cr1.html", "rooms/r1.html"),
        ],
    )
    def test_normal_forms(self, raw, expected):
        assert normalize_page_uri(raw) == expected

    @pytest.mark.parametrize(
        "raw",
        [
            "../outside.html",
            "..",
            "../../outside.html",
            "PainterNode/../../outside.html",
            # %2e%2e decodes to ".." — a dressed-up escape must be
            # rejected after decoding, not remapped or passed through.
            "%2e%2e/outside.html",
            "%2e%2e%2foutside.html",
            "..%2Foutside.html",
            "..\\outside.html",
            "%2e%2e%5coutside.html",
            # Rooted escapes: normpath on the rooted form would swallow
            # the ".." ("/../x" -> "/x") and silently remap the page
            # inside the site — the original bypass this guard closes.
            "/../outside.html",
            "/%2e%2e/outside.html",
            "%2F..%2Foutside.html",
        ],
    )
    def test_root_escapes_are_rejected(self, raw):
        with pytest.raises(NavigationError, match="escapes the site root"):
            normalize_page_uri(raw)


class TestLazyProviderUris:
    def test_rooted_and_dot_relative_uris_resolve(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            provider = server.provider("visitor")
            plain = provider.page("PaintingNode/guitar.html")
            rooted = provider.page("/PaintingNode/guitar.html")
            dotted = provider.page("./PaintingNode/guitar.html")
            assert plain.uri == rooted.uri == dotted.uri
            assert plain.anchors == rooted.anchors == dotted.anchors
            assert provider.page("/index.html").uri == "index.html"

    def test_percent_encoded_and_backslash_uris_resolve(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            provider = server.provider("visitor")
            plain = provider.page("PaintingNode/guitar.html")
            encoded = provider.page("PaintingNode%2Fguitar.html")
            backslashed = provider.page("PaintingNode\\guitar.html")
            assert plain.uri == encoded.uri == backslashed.uri
            assert plain.anchors == encoded.anchors == backslashed.anchors

    def test_unknown_pages_still_raise(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            provider = server.provider("curator")
            with pytest.raises(NavigationError):
                provider.page("ghost.html")
            with pytest.raises(NavigationError):
                provider.page("../outside.html")


class TestAudienceServer:
    def test_audiences_serve_concurrently_from_one_runtime(self, fixture):
        reference = build_audience_sites(fixture, VISITOR_CURATOR)
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            assert server.audiences() == ["visitor", "curator"]
            # Interleave the two audiences' requests: every page must
            # equal the audience's materialized reference site.
            for path in reference["visitor"].paths():
                visitor_page = server.provider("visitor").page(path)
                curator_page = server.provider("curator").page(path)
                assert visitor_page.uri == curator_page.uri == path
                ref_v = {
                    (a.label, a.rel)
                    for a in UserAgent(reference["visitor"].provider())
                    .open(path)
                    .anchors
                }
                ref_c = {
                    (a.label, a.rel)
                    for a in UserAgent(reference["curator"].provider())
                    .open(path)
                    .anchors
                }
                assert {(a.label, a.rel) for a in visitor_page.anchors} == ref_v
                assert {(a.label, a.rel) for a in curator_page.anchors} == ref_c
        # The shared class left the server exactly as it entered.
        assert not hasattr(PageRenderer.render_node, "__woven__")

    def test_one_runtime_one_class_scan(self, fixture, monkeypatch):
        scans = []
        real_scan = weaver_mod._scan_method_shadows

        def counting_scan(cls):
            scans.append(cls)
            return real_scan(cls)

        monkeypatch.setattr(weaver_mod, "_scan_method_shadows", counting_scan)
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            assert scans.count(PageRenderer) == 1
            assert server.runtime.stats()["instance_scoped"] == 3

    def test_reconfigure_leaves_other_audience_byte_identical(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            visitor = server.renderer("visitor")
            before = [visitor.render_home().html()] + [
                visitor.render_node(node).html()
                for node in visitor.node_inventory()
            ]
            curator_agent = UserAgent(server.provider("curator"))
            assert curator_agent.open("PaintingNode/guitar.html").anchors_with_rel(
                "next"
            ) == []

            server.reconfigure("curator", ("indexed-guided-tour",))

            after = [visitor.render_home().html()] + [
                visitor.render_node(node).html()
                for node in visitor.node_inventory()
            ]
            assert before == after
            page = curator_agent.open("PaintingNode/guitar.html")
            assert len(page.anchors_with_rel("next")) == 1
            assert server.bundle("curator").access_structures == (
                "indexed-guided-tour",
            )

    def test_reconfigure_accepts_bundles_and_validates_names(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            server.reconfigure("visitor", AudienceBundle("visitor", ("index",)))
            assert server.bundle("visitor").access_structures == ("index",)
            with pytest.raises(NavigationError, match="no audience"):
                server.reconfigure("stranger", ("index",))
            with pytest.raises(NavigationError, match="no audience"):
                server.provider("stranger")

    def test_specs_resolved_once_and_shared(self, fixture, monkeypatch):
        import repro.core.navspec as navspec_mod

        calls = []
        real = navspec_mod.default_museum_spec

        def counting(access):
            calls.append(access)
            return real(access)

        monkeypatch.setattr(navspec_mod, "default_museum_spec", counting)
        bundles = [
            AudienceBundle("a", ("index",)),
            AudienceBundle("b", ("index", "guided-tour")),
            AudienceBundle("c", ("index",)),
        ]
        sites = build_audience_sites(fixture, bundles)
        # Each access-structure name resolved exactly once, however many
        # bundles stack it.
        assert sorted(calls) == ["guided-tour", "index"]
        assert set(sites) == {"a", "b", "c"}

    def test_prebuilt_specs_are_honoured(self, fixture):
        spec = default_museum_spec("indexed-guided-tour")
        with AudienceServer(
            fixture,
            [AudienceBundle("power", ("indexed-guided-tour",))],
            specs_by_access={"indexed-guided-tour": spec},
        ) as server:
            agent = UserAgent(server.provider("power"))
            page = agent.open("PaintingNode/guitar.html")
            assert len(page.anchors_with_rel("next")) == 1

    def test_failed_reconfigure_leaves_the_audience_intact(self, fixture):
        """An unknown access-structure name must not strip the audience."""
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            before = sorted(
                (a.label, a.rel)
                for a in server.provider("curator").page("index.html").anchors
            )
            with pytest.raises(ValueError):
                server.reconfigure("curator", ("index", "no-such-structure"))
            assert server.bundle("curator").access_structures == ("index",)
            after = sorted(
                (a.label, a.rel)
                for a in server.provider("curator").page("index.html").anchors
            )
            assert before == after
            assert len(server.deployments("curator")) == 1

    def test_duplicate_bundle_names_are_rejected(self, fixture):
        from repro.core import PageRenderer

        with pytest.raises(NavigationError, match="duplicate audience"):
            AudienceServer(
                fixture,
                [
                    AudienceBundle("visitor", ("index",)),
                    AudienceBundle("visitor", ("guided-tour",)),
                ],
            )
        # The constructor rolled its transaction back.
        assert not hasattr(PageRenderer.render_node, "__woven__")

    def test_closed_server_refuses_service(self, fixture):
        server = AudienceServer(fixture, VISITOR_CURATOR)
        server.close()
        server.close()  # idempotent
        with pytest.raises(NavigationError, match="closed"):
            server.provider("visitor")
        assert not hasattr(PageRenderer.render_node, "__woven__")


class TestConcurrentAudiences:
    def test_threaded_renders_never_bleed_across_audiences(self, fixture):
        """Two audiences render interleaved from threads; navs stay apart."""
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            # Single-threaded reference renders per audience.
            paths = ["index.html", "PaintingNode/guitar.html"]
            expected = {
                audience: {
                    path: sorted(
                        (a.label, a.rel)
                        for a in server.provider(audience).page(path).anchors
                    )
                    for path in paths
                }
                for audience in ("visitor", "curator")
            }
            errors: list[BaseException] = []
            start = threading.Barrier(4)

            def hammer(audience: str) -> None:
                try:
                    provider = server.provider(audience)
                    start.wait()
                    for _ in range(40):
                        for path in paths:
                            got = sorted(
                                (a.label, a.rel)
                                for a in provider.page(path).anchors
                            )
                            assert got == expected[audience][path]
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(audience,))
                for audience in ("visitor", "curator", "visitor", "curator")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
