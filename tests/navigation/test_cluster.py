"""The serving cluster: hash ring, worker pool, front routing, failover.

The ring suite is pure-unit (determinism, coverage, minimal disruption).
The pool suite is the real thing — child ``repro.tools serve`` processes
behind a :class:`ClusterFront` — so it runs the whole cluster story in
one sequential scenario to pay the spawn cost once: sticky routing,
aggregate management surface, reconfigure fan-out, and the acceptance
move — retiring a session's owner and watching the session resume on
another worker with its breadcrumb trail intact.
"""

import asyncio
import collections
import json

import pytest

from repro.navigation.cluster import (
    ClusterError,
    ClusterFront,
    HashRing,
    WorkerPool,
)

GUITAR = "PaintingNode/guitar.html"


class TestHashRing:
    def test_owner_is_deterministic_and_total(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"session-{n}" for n in range(100)]
        owners = {key: ring.owner(key) for key in keys}
        assert owners == {key: ring.owner(key) for key in keys}
        assert set(owners.values()) <= {"w0", "w1", "w2"}

    def test_load_spreads_across_members(self):
        ring = HashRing(["w0", "w1", "w2"])
        counts = collections.Counter(
            ring.owner(f"session-{n}") for n in range(300)
        )
        # Uniform enough: every member owns a meaningful share.
        assert set(counts) == {"w0", "w1", "w2"}
        assert min(counts.values()) >= 30

    def test_removal_remaps_only_the_removed_members_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"session-{n}" for n in range(200)]
        before = {key: ring.owner(key) for key in keys}
        ring.remove("w1")
        for key in keys:
            if before[key] != "w1":
                assert ring.owner(key) == before[key], key
            else:
                assert ring.owner(key) in ("w0", "w2")

    def test_adding_a_member_back_restores_the_mapping(self):
        ring = HashRing(["w0", "w1"])
        before = {f"s{n}": ring.owner(f"s{n}") for n in range(50)}
        ring.remove("w0")
        ring.add("w0")
        assert {key: ring.owner(key) for key in before} == before

    def test_membership_bookkeeping(self):
        ring = HashRing()
        assert len(ring) == 0
        ring.add("w0")
        ring.add("w0")  # idempotent
        assert ring.members == ("w0",) and "w0" in ring
        with pytest.raises(KeyError):
            ring.remove("ghost")
        ring.remove("w0")
        with pytest.raises(ClusterError):
            ring.owner("anything")
        with pytest.raises(ValueError):
            HashRing(replicas=0)


def front_call(front, path, *, method="GET", sid=None, body=b""):
    """Drive the ClusterFront ASGI callable directly."""
    headers = [(b"host", b"cluster-test")]
    if sid is not None:
        headers.append((b"x-repro-session", sid.encode()))
    scope = {
        "type": "http",
        "http_version": "1.1",
        "method": method,
        "path": path,
        "raw_path": path.encode(),
        "query_string": b"",
        "headers": headers,
    }
    messages = [{"type": "http.request", "body": body, "more_body": False}]

    async def receive():
        return messages.pop(0) if messages else {"type": "http.disconnect"}

    captured = {"body": b""}

    async def send(message):
        if message["type"] == "http.response.start":
            captured["status"] = message["status"]
            captured["headers"] = {
                name.decode(): value.decode()
                for name, value in message["headers"]
            }
        else:
            captured["body"] += message.get("body", b"")

    asyncio.run(front(scope, receive, send))
    return captured["status"], captured["headers"], captured["body"].decode()


class TestClusterEndToEnd:
    def test_the_full_cluster_story(self):
        with WorkerPool(2) as pool:
            front = ClusterFront(pool)

            # -- sticky consistent-hash routing --------------------------------
            assert pool.names() == ("w0", "w1")
            routed = {}
            for n in range(8):
                sid = f"rider-{n}"
                status, headers, _ = front_call(
                    front, "/visitor/index.html", sid=sid
                )
                assert status == 200
                routed[sid] = headers["X-Repro-Worker"]
                assert routed[sid] == pool.owner_of(sid).name
            # Replays land on the same worker every time.
            for sid, worker in routed.items():
                _, headers, _ = front_call(
                    front, "/visitor/index.html", sid=sid
                )
                assert headers["X-Repro-Worker"] == worker
            assert set(routed.values()) == {"w0", "w1"}, (
                "8 sessions all hashed onto one worker — ring is degenerate"
            )

            # A cookieless request gets a minted cookie from the front.
            status, headers, _ = front_call(front, "/visitor/index.html")
            assert status == 200
            assert headers["Set-Cookie"].startswith("repro_session=")

            # -- aggregate management surface ----------------------------------
            status, _, text = front_call(front, "/-/stats")
            assert status == 200
            stats = json.loads(text)
            assert stats["cluster"]["workers"] == 2
            assert stats["cluster"]["sessions"] == len(routed) + 1
            per_worker = [
                worker_stats["sessions"]["active"]
                for worker_stats in stats["workers"].values()
            ]
            assert sum(per_worker) == len(routed) + 1
            assert all(count > 0 for count in per_worker)

            # -- reconfigure fans out to every worker --------------------------
            status, _, text = front_call(
                front,
                "/-/reconfigure/curator",
                method="POST",
                body=b"indexed-guided-tour",
            )
            assert status == 200
            fanned = json.loads(text)["workers"]
            assert set(fanned) == {"w0", "w1"}
            for result in fanned.values():
                assert result["access_structures"] == ["indexed-guided-tour"]
            status, _, text = front_call(
                front, f"/curator/{GUITAR}", sid="rider-0"
            )
            assert status == 200 and 'rel="next"' in text

            # -- retirement migrates sessions, trails intact -------------------
            traveler = "rider-0"
            for page in (GUITAR, "PaintingNode/guernica.html"):
                status, _, _ = front_call(
                    front, f"/visitor/{page}", sid=traveler
                )
                assert status == 200
            old_owner = pool.owner_of(traveler).name
            migrated = pool.retire_worker(old_owner)
            assert migrated >= 1  # at least the traveler moved
            assert pool.names() == tuple(
                name for name in ("w0", "w1") if name != old_owner
            )
            status, headers, text = front_call(
                front, "/visitor/PaintingNode/violin.html", sid=traveler
            )
            assert status == 200
            assert headers["X-Repro-Worker"] != old_owner
            # The trail survived the move: every page from the old worker
            # shows up as a crumb on the new one.
            assert 'class="breadcrumbs"' in text
            for crumb in ("index.html", "guitar.html", "guernica.html"):
                assert crumb in text, f"lost {crumb} in the migration"

            # Sessions of the surviving worker kept their own trails too.
            survivors = [
                sid
                for sid, worker in routed.items()
                if worker != old_owner and sid != traveler
            ]
            if survivors:
                _, _, text = front_call(
                    front, f"/visitor/{GUITAR}", sid=survivors[0]
                )
                assert "index.html" in text  # their home-page crumb

    def test_retiring_an_unknown_worker_raises(self):
        pool = WorkerPool(1)
        with pytest.raises(KeyError):
            pool.retire_worker("ghost")

    def test_pool_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
