"""The serving cluster: hash ring, worker pool, front routing, failover.

The ring suite is pure-unit (determinism, coverage, minimal disruption).
The pool suite is the real thing — child ``repro.tools serve`` processes
behind a :class:`ClusterFront` — so it runs the whole cluster story in
one sequential scenario to pay the spawn cost once: sticky routing,
aggregate management surface, reconfigure fan-out, and the acceptance
move — retiring a session's owner and watching the session resume on
another worker with its breadcrumb trail intact.
"""

import asyncio
import collections
import json

import pytest

from repro.navigation.cluster import (
    ClusterError,
    ClusterFront,
    HashRing,
    WorkerPool,
)
from repro.navigation.session import SessionRecord

GUITAR = "PaintingNode/guitar.html"


class TestHashRing:
    def test_owner_is_deterministic_and_total(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"session-{n}" for n in range(100)]
        owners = {key: ring.owner(key) for key in keys}
        assert owners == {key: ring.owner(key) for key in keys}
        assert set(owners.values()) <= {"w0", "w1", "w2"}

    def test_load_spreads_across_members(self):
        ring = HashRing(["w0", "w1", "w2"])
        counts = collections.Counter(
            ring.owner(f"session-{n}") for n in range(300)
        )
        # Uniform enough: every member owns a meaningful share.
        assert set(counts) == {"w0", "w1", "w2"}
        assert min(counts.values()) >= 30

    def test_removal_remaps_only_the_removed_members_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"session-{n}" for n in range(200)]
        before = {key: ring.owner(key) for key in keys}
        ring.remove("w1")
        for key in keys:
            if before[key] != "w1":
                assert ring.owner(key) == before[key], key
            else:
                assert ring.owner(key) in ("w0", "w2")

    def test_adding_a_member_back_restores_the_mapping(self):
        ring = HashRing(["w0", "w1"])
        before = {f"s{n}": ring.owner(f"s{n}") for n in range(50)}
        ring.remove("w0")
        ring.add("w0")
        assert {key: ring.owner(key) for key in before} == before

    def test_membership_bookkeeping(self):
        ring = HashRing()
        assert len(ring) == 0
        ring.add("w0")
        ring.add("w0")  # idempotent
        assert ring.members == ("w0",) and "w0" in ring
        with pytest.raises(KeyError):
            ring.remove("ghost")
        ring.remove("w0")
        with pytest.raises(ClusterError):
            ring.owner("anything")
        with pytest.raises(ValueError):
            HashRing(replicas=0)


def front_call(front, path, *, method="GET", sid=None, body=b""):
    """Drive the ClusterFront ASGI callable directly."""
    headers = [(b"host", b"cluster-test")]
    if sid is not None:
        headers.append((b"x-repro-session", sid.encode()))
    scope = {
        "type": "http",
        "http_version": "1.1",
        "method": method,
        "path": path,
        "raw_path": path.encode(),
        "query_string": b"",
        "headers": headers,
    }
    messages = [{"type": "http.request", "body": body, "more_body": False}]

    async def receive():
        return messages.pop(0) if messages else {"type": "http.disconnect"}

    captured = {"body": b""}

    async def send(message):
        if message["type"] == "http.response.start":
            captured["status"] = message["status"]
            captured["headers"] = {
                name.decode(): value.decode()
                for name, value in message["headers"]
            }
        else:
            captured["body"] += message.get("body", b"")

    asyncio.run(front(scope, receive, send))
    return captured["status"], captured["headers"], captured["body"].decode()


class TestClusterEndToEnd:
    def test_the_full_cluster_story(self):
        with WorkerPool(2) as pool:
            front = ClusterFront(pool)

            # -- sticky consistent-hash routing --------------------------------
            assert pool.names() == ("w0", "w1")
            routed = {}
            for n in range(8):
                sid = f"rider-{n}"
                status, headers, _ = front_call(
                    front, "/visitor/index.html", sid=sid
                )
                assert status == 200
                routed[sid] = headers["X-Repro-Worker"]
                assert routed[sid] == pool.owner_of(sid).name
            # Replays land on the same worker every time.
            for sid, worker in routed.items():
                _, headers, _ = front_call(
                    front, "/visitor/index.html", sid=sid
                )
                assert headers["X-Repro-Worker"] == worker
            assert set(routed.values()) == {"w0", "w1"}, (
                "8 sessions all hashed onto one worker — ring is degenerate"
            )

            # A cookieless request gets a minted cookie from the front.
            status, headers, _ = front_call(front, "/visitor/index.html")
            assert status == 200
            assert headers["Set-Cookie"].startswith("repro_session=")

            # -- aggregate management surface ----------------------------------
            status, _, text = front_call(front, "/-/stats")
            assert status == 200
            stats = json.loads(text)
            assert stats["cluster"]["workers"] == 2
            assert stats["cluster"]["sessions"] == len(routed) + 1
            per_worker = [
                worker_stats["sessions"]["active"]
                for worker_stats in stats["workers"].values()
            ]
            assert sum(per_worker) == len(routed) + 1
            assert all(count > 0 for count in per_worker)

            # -- reconfigure fans out to every worker --------------------------
            status, _, text = front_call(
                front,
                "/-/reconfigure/curator",
                method="POST",
                body=b"indexed-guided-tour",
            )
            assert status == 200
            fanned = json.loads(text)["workers"]
            assert set(fanned) == {"w0", "w1"}
            for result in fanned.values():
                assert result["access_structures"] == ["indexed-guided-tour"]
            status, _, text = front_call(
                front, f"/curator/{GUITAR}", sid="rider-0"
            )
            assert status == 200 and 'rel="next"' in text

            # -- retirement migrates sessions, trails intact -------------------
            traveler = "rider-0"
            for page in (GUITAR, "PaintingNode/guernica.html"):
                status, _, _ = front_call(
                    front, f"/visitor/{page}", sid=traveler
                )
                assert status == 200
            old_owner = pool.owner_of(traveler).name
            migrated = pool.retire_worker(old_owner)
            assert migrated >= 1  # at least the traveler moved
            assert pool.names() == tuple(
                name for name in ("w0", "w1") if name != old_owner
            )
            status, headers, text = front_call(
                front, "/visitor/PaintingNode/violin.html", sid=traveler
            )
            assert status == 200
            assert headers["X-Repro-Worker"] != old_owner
            # The trail survived the move: every page from the old worker
            # shows up as a crumb on the new one.
            assert 'class="breadcrumbs"' in text
            for crumb in ("index.html", "guitar.html", "guernica.html"):
                assert crumb in text, f"lost {crumb} in the migration"

            # Sessions of the surviving worker kept their own trails too.
            survivors = [
                sid
                for sid, worker in routed.items()
                if worker != old_owner and sid != traveler
            ]
            if survivors:
                _, _, text = front_call(
                    front, f"/visitor/{GUITAR}", sid=survivors[0]
                )
                assert "index.html" in text  # their home-page crumb

            # -- a crashed worker is revived in place --------------------------
            (last,) = pool.names()
            pool.workers[last].kill()  # SIGKILL: an unexpected death
            status, headers, _ = front_call(
                front, "/visitor/index.html", sid=traveler
            )
            assert status == 200, "crashed worker kept 503ing"
            assert headers["X-Repro-Worker"] == last  # same ring identity
            assert pool.restarts == {last: 1}
            assert pool.workers[last].alive

            # -- growing the pool migrates the remapped sessions ---------------
            riders = [f"newcomer-{n}" for n in range(8)]
            for sid in riders:
                for page in ("index.html", GUITAR):
                    status, _, _ = front_call(
                        front, f"/visitor/{page}", sid=sid
                    )
                    assert status == 200
            grown = pool.add_worker().name
            assert set(pool.names()) == {last, grown}
            moved = [s for s in riders if pool.owner_of(s).name == grown]
            assert moved, (
                "8 sessions all stayed on the old worker — ring is degenerate"
            )
            status, headers, text = front_call(
                front, "/visitor/PaintingNode/guernica.html", sid=moved[0]
            )
            assert status == 200
            assert headers["X-Repro-Worker"] == grown
            # The trail followed the session onto the new worker.
            for crumb in ("index.html", "guitar.html"):
                assert crumb in text, f"lost {crumb} growing the pool"
            stayed = [s for s in riders if s not in moved]
            if stayed:
                _, headers, text = front_call(
                    front, f"/visitor/{GUITAR}", sid=stayed[0]
                )
                assert headers["X-Repro-Worker"] == last
                assert "index.html" in text  # untouched trail

    def test_retiring_an_unknown_worker_raises(self):
        pool = WorkerPool(1)
        with pytest.raises(KeyError):
            pool.retire_worker("ghost")

    def test_pool_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class FakeWorker:
    """A WorkerProcess stand-in: spawns instantly, dies on command."""

    def __init__(self, name, *, fail_spawns=0):
        self.name = name
        self._fail_spawns = fail_spawns
        self._alive = False
        self.spawn_attempts = 0
        self.sessions = {}  # sid -> SessionRecord, the "live" set
        self.snapshots = 0

    def snapshot_sessions(self):
        self.snapshots += 1
        return list(self.sessions.values())

    def restore_sessions(self, records):
        records = list(records)
        for record in records:
            self.sessions[record.sid] = record
        return len(records)

    @property
    def alive(self):
        return self._alive

    def spawn(self):
        self.spawn_attempts += 1
        if self._fail_spawns > 0:
            self._fail_spawns -= 1
            raise ClusterError(f"{self.name}: injected spawn failure")
        self._alive = True

    def die(self):
        self._alive = False  # the child crashed out from under us

    def kill(self):
        self._alive = False

    def terminate(self, *, timeout=15.0):
        self._alive = False
        return 0


def fake_pool(count, *, fail_spawns=0, **kwargs):
    """A started WorkerPool whose workers are in-process fakes.

    ``fail_spawns`` injected failures apply to *revival* spawns only
    (the initial ``start()`` spawns always succeed), and sleeps are
    recorded on ``pool.slept`` instead of actually sleeping.
    """
    pool = WorkerPool(count, **kwargs)
    pool.slept = []
    pool._sleep = pool.slept.append
    budget = {"failures": 0}

    def new_worker(name):
        # Each revival attempt constructs a fresh worker; burn one
        # injected failure per attempt until the budget runs out.
        if budget["failures"] > 0:
            budget["failures"] -= 1
            return FakeWorker(name, fail_spawns=1)
        return FakeWorker(name)

    pool._new_worker = new_worker
    pool.start()
    budget["failures"] = fail_spawns
    return pool


def sid_owned_by(pool, name, *, avoid=False):
    """A session id the ring maps to *name* (or to anyone else)."""
    for n in range(10_000):
        sid = f"probe-{n}"
        if (pool.ring.owner(sid) == name) != avoid:
            return sid
    raise AssertionError("no sid found — degenerate ring")


class TestWorkerRevival:
    """A crashed worker is respawned in place; only a hopeless one is
    dropped from the ring.  These run against in-process fakes — the
    real-child crash path is covered once in the end-to-end story."""

    def test_dead_worker_is_respawned_under_its_own_name(self):
        pool = fake_pool(2)
        casualty = pool.ring.owner("rider-1")
        mapping = {f"s{n}": pool.ring.owner(f"s{n}") for n in range(50)}
        pool.workers[casualty].die()
        worker = pool.owner_of(sid_owned_by(pool, casualty))
        assert worker.name == casualty and worker.alive
        assert worker is pool.workers[casualty]
        assert pool.restarts == {casualty: 1}
        # The ring never changed: every sid still maps where it did.
        assert {sid: pool.ring.owner(sid) for sid in mapping} == mapping
        # The first respawn attempt is immediate — no backoff pause.
        assert pool.slept == []

    def test_failed_spawns_back_off_exponentially(self):
        pool = fake_pool(1, fail_spawns=2, restart_backoff=0.25)
        pool.workers["w0"].die()
        worker = pool.owner_of("rider-1")
        assert worker.alive and worker.name == "w0"
        assert pool.slept == [0.25, 0.5]
        assert pool.restarts == {"w0": 1}

    def test_exhausted_retries_remap_sessions_to_survivors(self):
        pool = fake_pool(2, fail_spawns=3, restart_limit=3)
        casualty = pool.ring.owner("rider-1")
        survivor = next(n for n in pool.names() if n != casualty)
        pool.workers[casualty].die()
        worker = pool.owner_of(sid_owned_by(pool, casualty))
        assert worker.name == survivor and worker.alive
        assert pool.names() == (survivor,)
        assert casualty not in pool.workers and pool.restarts == {}

    def test_losing_the_last_worker_raises(self):
        pool = fake_pool(1, fail_spawns=3, restart_limit=3)
        pool.workers["w0"].die()
        with pytest.raises(ClusterError):
            pool.owner_of("rider-1")
        assert pool.names() == ()

    def test_revive_is_a_noop_for_live_or_retired_names(self):
        pool = fake_pool(1)
        live = pool.workers["w0"]
        assert pool.revive_worker("w0") is live  # alive: untouched
        assert pool.restarts == {}
        assert pool.revive_worker("ghost") is None  # never existed


class TestPoolGrowth:
    """``add_worker``'s rebalance sweep, against in-process fakes."""

    def seed(self, pool, count=40):
        for n in range(count):
            sid = f"s{n}"
            owner = pool.workers[pool.ring.owner(sid)]
            owner.sessions[sid] = SessionRecord(sid=sid, audience="visitor")

    def test_initial_fill_skips_the_sweep(self):
        pool = fake_pool(3)
        assert all(w.snapshots == 0 for w in pool.workers.values())

    def test_add_worker_restores_only_remapped_records(self):
        pool = fake_pool(2)
        self.seed(pool)
        before = {name: dict(w.sessions) for name, w in pool.workers.items()}
        worker = pool.add_worker()
        expected = {
            sid
            for sessions in before.values()
            for sid in sessions
            if pool.ring.owner(sid) == worker.name
        }
        assert expected, "no keyspace moved to the newcomer — degenerate ring"
        assert set(worker.sessions) == expected
        # Every live donor was snapshotted exactly once; donors keep
        # their (stale, unreachable) copies — records are snapshots,
        # not owning handles.
        for name, sessions in before.items():
            assert pool.workers[name].snapshots == 1
            assert set(pool.workers[name].sessions) == set(sessions)

    def test_dead_donors_are_not_snapshotted(self):
        pool = fake_pool(2)
        self.seed(pool)
        casualty = pool.ring.owner("s0")
        pool.workers[casualty].die()
        worker = pool.add_worker()
        assert pool.workers[casualty].snapshots == 0
        survivor = next(
            w
            for name, w in pool.workers.items()
            if name not in (casualty, worker.name)
        )
        assert survivor.snapshots == 1
