"""The asyncio/ASGI front: WSGI parity, the adapter, and the HTTP host.

The contract under test is *byte-identical parity*: both fronts route
through :meth:`NavigationApp.respond`, so any request answered by the
WSGI front must get the same status, management payloads and page bytes
from the ASGI front — including session identity, cache header semantics
and error mapping.  The socket suite drives the hand-rolled asyncio
HTTP/1.1 server end-to-end: keep-alive, malformed requests, concurrent
sessions, and the close-then-drain shutdown sequence.
"""

import asyncio
import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.baselines import museum_fixture
from repro.navigation import (
    AsgiHttpServer,
    AsgiNavigationApp,
    AudienceBundle,
    AudienceServer,
    NavigationApp,
)
from repro.navigation.asgi import build_environ

VISITOR_CURATOR = [
    AudienceBundle("visitor", ("index", "guided-tour")),
    AudienceBundle("curator", ("index",)),
]

GUITAR = "PaintingNode/guitar.html"


@pytest.fixture()
def fixture():
    return museum_fixture()


@pytest.fixture()
def served(fixture):
    with AudienceServer(fixture, VISITOR_CURATOR) as server:
        app = NavigationApp(server)
        try:
            yield server, app
        finally:
            app.close()


def wsgi_call(app, path, *, method="GET", sid=None, body=None):
    payload = body.encode() if isinstance(body, str) else (body or b"")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(payload)),
        "wsgi.input": io.BytesIO(payload),
    }
    if sid is not None:
        environ["HTTP_X_REPRO_SESSION"] = sid
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = headers

    chunks = app(environ, start_response)
    return (
        int(captured["status"].split()[0]),
        dict(captured["headers"]),
        b"".join(chunks),
    )


def asgi_call(asgi_app, path, *, method="GET", sid=None, body=None):
    """Drive the ASGI callable directly on a private event loop."""
    payload = body.encode() if isinstance(body, str) else (body or b"")
    headers = [(b"host", b"testserver")]
    if sid is not None:
        headers.append((b"x-repro-session", sid.encode()))
    if payload:
        headers.append((b"content-length", str(len(payload)).encode()))
    scope = {
        "type": "http",
        "http_version": "1.1",
        "method": method,
        "scheme": "http",
        "path": urllib.request.unquote(path),
        "raw_path": path.encode("latin-1"),
        "query_string": b"",
        "headers": headers,
    }
    messages = [{"type": "http.request", "body": payload, "more_body": False}]

    async def receive():
        return messages.pop(0) if messages else {"type": "http.disconnect"}

    captured = {"headers": [], "body": b""}

    async def send(message):
        if message["type"] == "http.response.start":
            captured["status"] = message["status"]
            captured["headers"] = message["headers"]
        else:
            captured["body"] += message.get("body", b"")

    asyncio.run(asgi_app(scope, receive, send))
    headers_out = {
        name.decode(): value.decode() for name, value in captured["headers"]
    }
    return captured["status"], headers_out, captured["body"]


class TestWsgiParity:
    """Same request, either front, identical answer."""

    PATHS = [
        "/",
        "/visitor/index.html",
        f"/visitor/{GUITAR}",
        "/visitor/PaintingNode%2Fguitar.html",
        f"/curator/{GUITAR}",
        "/stranger/index.html",
        "/visitor/ghost.html",
        "/-/ghost",
    ]

    def test_get_responses_are_byte_identical(self, served):
        _, app = served
        asgi_app = AsgiNavigationApp(app)
        for path in self.PATHS:
            w_status, w_headers, w_body = wsgi_call(app, path, sid="alice")
            a_status, a_headers, a_body = asgi_call(asgi_app, path, sid="alice")
            assert (a_status, a_body) == (w_status, w_body), path
            # The WSGI request warms the page cache the ASGI request then
            # hits; the cache-outcome header is the one legitimate delta.
            a_headers.pop("X-Repro-Cache", None)
            w_headers = dict(w_headers)
            w_headers.pop("X-Repro-Cache", None)
            assert a_headers == w_headers, path

    def test_session_trails_span_fronts(self, served):
        """One session, served by both fronts, grows a single trail."""
        _, app = served
        asgi_app = AsgiNavigationApp(app)
        wsgi_call(app, "/visitor/index.html", sid="alice")
        status, _, text = asgi_call(asgi_app, f"/visitor/{GUITAR}", sid="alice")
        assert status == 200
        assert b'class="breadcrumbs"' in text
        assert len(app.sessions()) == 1

    def test_management_surface_parity(self, served):
        _, app = served
        asgi_app = AsgiNavigationApp(app)
        asgi_call(asgi_app, f"/visitor/{GUITAR}", sid="alice")
        status, headers, text = asgi_call(asgi_app, "/-/stats")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        stats = json.loads(text)
        assert stats["sessions"]["active"] == 1
        assert stats["audiences"]["visitor"]["requests"] == 1
        status, _, text = asgi_call(
            asgi_app,
            "/-/reconfigure/curator",
            method="POST",
            body="indexed-guided-tour",
        )
        assert status == 200
        assert json.loads(text)["access_structures"] == ["indexed-guided-tour"]

    def test_error_statuses_map_identically(self, served):
        _, app = served
        asgi_app = AsgiNavigationApp(app)
        for path, method, expected in [
            ("/stranger/index.html", "GET", 404),
            ("/visitor/index.html", "POST", 405),
            ("/-/reconfigure/curator", "POST", 400),  # empty body
        ]:
            status, _, _ = asgi_call(asgi_app, path, method=method)
            assert status == expected, (path, method)

    def test_lifespan_scope_is_acknowledged(self, served):
        _, app = served
        asgi_app = AsgiNavigationApp(app)
        messages = [
            {"type": "lifespan.startup"},
            {"type": "lifespan.shutdown"},
        ]
        sent = []

        async def receive():
            return messages.pop(0)

        async def send(message):
            sent.append(message["type"])

        asyncio.run(asgi_app({"type": "lifespan"}, receive, send))
        assert sent == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]


class TestBuildEnviron:
    def test_raw_path_wins_over_decoded_path(self):
        environ = build_environ(
            {
                "method": "GET",
                "path": "/visitor/PaintingNode/guitar.html",
                "raw_path": b"/visitor/PaintingNode%2Fguitar.html",
                "headers": [],
            },
            b"",
        )
        assert environ["PATH_INFO"] == "/visitor/PaintingNode%2Fguitar.html"

    def test_headers_become_http_keys_and_fold_duplicates(self):
        environ = build_environ(
            {
                "method": "GET",
                "path": "/",
                "headers": [
                    (b"X-Repro-Session", b" alice "),
                    (b"accept", b"text/html"),
                    (b"accept", b"application/json"),
                    (b"content-type", b"text/plain"),
                    (b"content-length", b"999"),  # ignored: body is read
                ],
            },
            b"hi",
        )
        assert environ["HTTP_X_REPRO_SESSION"] == "alice"
        assert environ["HTTP_ACCEPT"] == "text/html,application/json"
        assert environ["CONTENT_TYPE"] == "text/plain"
        assert environ["CONTENT_LENGTH"] == "2"
        assert environ["wsgi.input"].read() == b"hi"


class _LoopServer:
    """AsgiHttpServer on a background event-loop thread, for socket tests."""

    def __init__(self, asgi_app):
        self._ready = threading.Event()
        self.loop = asyncio.new_event_loop()
        self.server = AsgiHttpServer(asgi_app)
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        # start_server begins accepting immediately; the loop just needs
        # to keep running (server.close() must not tear the loop down —
        # the drain test keeps using it afterwards).
        self.loop.run_until_complete(self.server.start())
        self.address = self.server.address
        self._ready.set()
        try:
            self.loop.run_forever()
        finally:
            self.loop.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(5), "server never came up"
        return self

    def __exit__(self, *exc):
        try:
            self.run_coro(self.server.aclose())
        except RuntimeError:
            pass
        try:
            self.loop.call_soon_threadsafe(self.loop.stop)
        except RuntimeError:
            pass
        self._thread.join(timeout=5)

    def url(self, path):
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def run_coro(self, coro, timeout=5.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)


class TestOverRealSockets:
    def test_serves_pages_and_management_over_tcp(self, served):
        _, app = served
        with _LoopServer(AsgiNavigationApp(app)) as host:
            request = urllib.request.Request(
                host.url(f"/visitor/{GUITAR}"),
                headers={"X-Repro-Session": "alice"},
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
                assert response.headers["X-Repro-Cache"] in (
                    "hit",
                    "miss",
                    "off",
                )
                assert b"Guitar" in response.read()
            with urllib.request.urlopen(host.url("/-/stats")) as response:
                stats = json.loads(response.read())
            assert stats["sessions"]["active"] == 1
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(host.url("/stranger/index.html"))
            assert info.value.code == 404

    def test_keep_alive_reuses_one_connection(self, served):
        import http.client

        _, app = served
        with _LoopServer(AsgiNavigationApp(app)) as host:
            connection = http.client.HTTPConnection(*host.address)
            try:
                for n in range(3):
                    connection.request(
                        "GET",
                        f"/visitor/{GUITAR}",
                        headers={"X-Repro-Session": "alice"},
                    )
                    response = connection.getresponse()
                    assert response.status == 200
                    response.read()
                    assert response.headers["Connection"] == "keep-alive"
            finally:
                connection.close()
            assert len(app.sessions()) == 1

    def test_malformed_requests_get_400_and_disconnect(self, served):
        import socket

        _, app = served
        with _LoopServer(AsgiNavigationApp(app)) as host:
            with socket.create_connection(host.address, timeout=5) as raw:
                raw.sendall(b"NONSENSE\r\n\r\n")
                reply = raw.recv(4096)
            assert reply.startswith(b"HTTP/1.1 400 ")

    def test_close_then_drain_finishes_in_flight_requests(self, served):
        _, app = served
        with _LoopServer(AsgiNavigationApp(app)) as host:
            with urllib.request.urlopen(
                urllib.request.Request(
                    host.url(f"/visitor/{GUITAR}"),
                    headers={"X-Repro-Session": "alice"},
                )
            ) as response:
                assert response.status == 200
                response.read()

            async def shut_down():
                host.server.close()
                return await host.server.drain(timeout=5)

            assert host.run_coro(shut_down())
            # New connections are refused after close().
            with pytest.raises(OSError):
                urllib.request.urlopen(host.url("/"), timeout=2)

    def test_concurrent_sessions_stay_isolated_over_tcp(self, served):
        _, app = served
        with _LoopServer(AsgiNavigationApp(app)) as host:
            errors = []
            pages = {}

            def browse(sid):
                try:
                    opener = urllib.request.build_opener()
                    for path in ("index.html", GUITAR):
                        request = urllib.request.Request(
                            host.url(f"/visitor/{path}"),
                            headers={"X-Repro-Session": sid},
                        )
                        with opener.open(request, timeout=10) as response:
                            pages[sid] = response.read().decode()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append((sid, exc))

            threads = [
                threading.Thread(target=browse, args=(f"user-{n}",))
                for n in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            # Every session saw its own trail (home crumb), nobody else's.
            for sid, text in pages.items():
                assert 'class="breadcrumbs"' in text
                assert "user-" not in text  # sids never leak into pages
            assert len(app.sessions()) == 8
