"""ServingConfig, the SessionTier handle, and the deprecation shims.

The api_redesign satellite suite: the typed config surface's validation
and env interaction, the :class:`SessionTier` lifecycle that replaces
the four-call adopt/deploy/undeploy/release dance, and the
``DeprecationWarning`` shims that keep every pre-redesign call site
running while it migrates.
"""

import pytest

from repro.baselines import museum_fixture
from repro.hypermedia.errors import NavigationError
from repro.navigation import (
    AudienceBundle,
    AudienceServer,
    BreadcrumbAspect,
    NavigationApp,
    ServingConfig,
    SessionTier,
)

VISITOR = [AudienceBundle("visitor", ("index", "guided-tour"))]


@pytest.fixture()
def fixture():
    return museum_fixture()


class TestServingConfig:
    def test_defaults_validate(self):
        config = ServingConfig()
        assert config.session_idle_timeout == 600.0
        assert config.cache_enabled is True

    @pytest.mark.parametrize(
        "changes",
        [
            {"session_idle_timeout": 0.0},
            {"session_idle_timeout": -1.0},
            {"max_sessions": 0},
            {"breadcrumb_limit": 0},
            {"lint": "loud"},
            {"cache_pages": 0},
        ],
    )
    def test_rejects_bad_values(self, changes):
        with pytest.raises(ValueError):
            ServingConfig(**changes)

    def test_none_idle_timeout_disables_eviction(self):
        assert ServingConfig(session_idle_timeout=None).session_idle_timeout is None

    def test_replace_revalidates(self):
        config = ServingConfig()
        assert config.replace(max_sessions=9).max_sessions == 9
        with pytest.raises(ValueError):
            config.replace(max_sessions=-1)

    def test_cache_active_needs_both_switches(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAGE_CACHE", raising=False)
        assert ServingConfig().cache_active()
        assert not ServingConfig(cache_enabled=False).cache_active()
        monkeypatch.setenv("REPRO_PAGE_CACHE", "off")
        assert not ServingConfig().cache_active()

    def test_flows_through_server_and_app(self, fixture):
        config = ServingConfig(breadcrumb_limit=2, max_sessions=7)
        with AudienceServer(fixture, VISITOR, config=config) as server:
            assert server.config is config
            app = NavigationApp(server)
            # The app inherits the server's config when not given one.
            assert app.config is config
            assert app.config.max_sessions == 7
            app.close()


class TestSessionTier:
    def test_context_manager_unwinds_everything(self, fixture):
        with AudienceServer(fixture, VISITOR) as server:
            with server.session_tier("visitor") as tier:
                assert isinstance(tier, SessionTier)
                aspect = BreadcrumbAspect(limit=4)
                tier.deploy(aspect)
                assert tier.aspects() == [aspect]
                assert tier.renderer in server.scope("visitor")
                assert tier.renderer in tier.scope
            # Closed: deployment unwound, renderer released.
            assert tier.aspects() == []
            assert tier.renderer not in server.scope("visitor")

    def test_close_is_idempotent_and_blocks_deploys(self, fixture):
        with AudienceServer(fixture, VISITOR) as server:
            tier = server.session_tier("visitor")
            tier.close()
            tier.close()
            with pytest.raises(NavigationError):
                tier.deploy(BreadcrumbAspect(limit=4))

    def test_undeploy_unwinds_one_aspect_early(self, fixture):
        with AudienceServer(fixture, VISITOR) as server:
            with server.session_tier("visitor") as tier:
                first = BreadcrumbAspect(limit=4)
                second = BreadcrumbAspect(limit=2)
                tier.deploy(first)
                tier.deploy(second)
                tier.undeploy(first)
                assert tier.aspects() == [second]

    def test_tier_scoped_aspect_only_advises_this_session(self, fixture):
        with AudienceServer(fixture, VISITOR) as server:
            with (
                server.session_tier("visitor") as mine,
                server.session_tier("visitor") as theirs,
            ):
                mine.deploy(BreadcrumbAspect(limit=4))
                # The second page carries the trail (the first had no
                # history — ``record`` returns the *prior* crumbs).
                node = next(iter(mine.renderer.node_inventory()))
                mine.renderer.render_home()
                mine_html = mine.renderer.render_node(node).html()
                theirs.renderer.render_home()
                theirs_html = theirs.renderer.render_node(node).html()
                assert 'class="breadcrumbs"' in mine_html
                assert 'class="breadcrumbs"' not in theirs_html


class TestDeprecationShims:
    def test_audience_server_lint_kwarg_warns_and_folds(self, fixture):
        with pytest.warns(DeprecationWarning, match="lint"):
            server = AudienceServer(fixture, VISITOR, lint="warn")
        with server:
            assert server.config.lint == "warn"

    def test_navigation_app_kwargs_warn_and_fold(self, fixture):
        with AudienceServer(fixture, VISITOR) as server:
            with pytest.warns(DeprecationWarning, match="max_sessions"):
                app = NavigationApp(server, max_sessions=3)
            assert app.config.max_sessions == 3
            app.close()
            with pytest.warns(DeprecationWarning, match="breadcrumb_limit"):
                app = NavigationApp(server, breadcrumb_limit=2)
            app.close()
            with pytest.warns(DeprecationWarning, match="session_idle_timeout"):
                app = NavigationApp(server, session_idle_timeout=5.0)
            app.close()

    def test_old_scope_methods_delegate_with_warnings(self, fixture):
        with AudienceServer(fixture, VISITOR) as server:
            with pytest.warns(DeprecationWarning, match="adopt_renderer"):
                renderer = server.adopt_renderer("visitor")
            aspect = BreadcrumbAspect(limit=4)
            with pytest.warns(DeprecationWarning, match="deploy_scoped"):
                server.deploy_scoped(aspect, [renderer], audience="visitor")
            with pytest.warns(DeprecationWarning, match="undeploy_scoped"):
                server.undeploy_scoped(aspect)
            with pytest.warns(DeprecationWarning, match="release_renderer"):
                server.release_renderer("visitor", renderer)
            assert renderer not in server.scope("visitor")
