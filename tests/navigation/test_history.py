"""Tests for the back/forward history."""

import pytest

from repro.navigation import History, NavigationError


class TestHistory:
    def test_empty_history(self):
        history = History()
        assert history.is_empty
        with pytest.raises(NavigationError):
            history.current

    def test_visit_sets_current(self):
        history = History()
        history.visit("a")
        assert history.current == "a"

    def test_back_and_forward(self):
        history = History()
        for page in ("a", "b", "c"):
            history.visit(page)
        assert history.back() == "b"
        assert history.back() == "a"
        assert history.forward() == "b"
        assert history.current == "b"

    def test_back_past_start_raises(self):
        history = History()
        history.visit("a")
        with pytest.raises(NavigationError):
            history.back()

    def test_forward_without_back_raises(self):
        history = History()
        history.visit("a")
        with pytest.raises(NavigationError):
            history.forward()

    def test_visit_clears_forward_stack(self):
        history = History()
        for page in ("a", "b", "c"):
            history.visit(page)
        history.back()
        history.visit("d")
        assert not history.can_go_forward()
        assert history.trail() == ["a", "b", "d"]

    def test_trail_and_len(self):
        history = History()
        for page in ("a", "b"):
            history.visit(page)
        assert history.trail() == ["a", "b"]
        assert len(history) == 2

    def test_can_go_flags(self):
        history = History()
        history.visit("a")
        history.visit("b")
        assert history.can_go_back()
        assert not history.can_go_forward()
        history.back()
        assert not history.can_go_back()
        assert history.can_go_forward()
