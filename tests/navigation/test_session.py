"""Tests for navigation sessions: the context-dependent semantics of §2."""

import pytest

from repro.baselines import museum_fixture
from repro.navigation import (
    BreadcrumbTrail,
    NavigationError,
    NavigationSession,
    SessionRecord,
)


@pytest.fixture()
def fixture():
    return museum_fixture()


@pytest.fixture()
def contexts(fixture):
    return fixture.contexts()


class TestVisiting:
    def test_visit_without_context(self, fixture):
        session = NavigationSession(fixture.nav)
        position = session.visit(fixture.painting_node("guitar"))
        assert position.context is None
        assert session.current_node.node_id == "guitar"

    def test_visit_with_context_requires_membership(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        with pytest.raises(NavigationError):
            session.visit(
                fixture.painting_node("memory"), contexts["by-painter:picasso"]
            )

    def test_enter_context_defaults_to_first_member(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        session.enter_context(contexts["by-painter:picasso"])
        assert session.current_node.node_id == "avignon"


class TestContextDependentMovement:
    def test_next_depends_on_arrival_context(self, fixture, contexts):
        """The museum story: Guitar's Next differs by how you arrived."""
        guitar = fixture.painting_node("guitar")

        via_author = NavigationSession(fixture.nav)
        via_author.visit(guitar, contexts["by-painter:picasso"])
        assert via_author.next().node.node_id == "guernica"

        via_movement = NavigationSession(fixture.nav)
        via_movement.visit(guitar, contexts["by-movement:cubism"])
        assert via_movement.next().node.node_id == "clarinet"

    def test_next_stays_in_context(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guitar"), contexts["by-painter:picasso"])
        session.next()
        assert session.current_context.name == "by-painter:picasso"

    def test_previous(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guitar"), contexts["by-painter:picasso"])
        assert session.previous().node.node_id == "avignon"

    def test_next_at_end_raises(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guernica"), contexts["by-painter:picasso"])
        with pytest.raises(NavigationError):
            session.next()

    def test_next_without_context_raises(self, fixture):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guitar"))
        with pytest.raises(NavigationError) as info:
            session.next()
        assert "context" in str(info.value)


class TestFollowingLinks:
    def test_follow_unique_link(self, fixture):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guitar"))
        position = session.follow("painted_by")
        assert position.node.node_id == "picasso"
        assert position.context is None  # leaving a context

    def test_follow_ambiguous_link_requires_choice(self, fixture):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painter_node("picasso"))
        with pytest.raises(NavigationError) as info:
            session.follow("paints")
        assert "guernica" in str(info.value)

    def test_follow_with_target_selection(self, fixture):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painter_node("picasso"))
        assert session.follow("paints", to="guitar").node.node_id == "guitar"

    def test_follow_missing_link_raises(self, fixture):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painter_node("picasso"))
        with pytest.raises(NavigationError):
            session.follow("paints", to="memory")  # Dali's, not Picasso's

    def test_follow_drops_context(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guitar"), contexts["by-painter:picasso"])
        session.follow("painted_by")
        assert session.current_context is None

    def test_follow_without_schema_raises(self, fixture):
        session = NavigationSession()  # no schema
        session.visit(fixture.painting_node("guitar"))
        with pytest.raises(NavigationError):
            session.follow("painted_by")


class TestHistoryIntegration:
    def test_back_restores_node_and_context(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guitar"), contexts["by-painter:picasso"])
        session.next()
        position = session.back()
        assert position.node.node_id == "guitar"
        assert position.context.name == "by-painter:picasso"
        # next() works again from the restored context.
        assert session.next().node.node_id == "guernica"

    def test_trail_describes_walk(self, fixture, contexts):
        session = NavigationSession(fixture.nav)
        session.visit(fixture.painting_node("guitar"), contexts["by-painter:picasso"])
        session.next()
        trail = session.trail()
        assert len(trail) == 2
        assert "guitar" in trail[0] and "by-painter:picasso" in trail[0]


class TestSessionRecord:
    """The portable snapshot: plain data, strict validation, JSON-stable."""

    def test_json_round_trip_is_exact(self):
        record = SessionRecord(
            sid="alice",
            audience="visitor",
            trail=(("a.html", "A"), ("b.html", "B")),
            last_seen=12.5,
            requests=3,
        )
        assert SessionRecord.from_json(record.to_json()) == record

    def test_trail_normalizes_to_string_pairs(self):
        record = SessionRecord(
            sid="s", audience="visitor", trail=[["a.html", "A"]]
        )
        assert record.trail == (("a.html", "A"),)

    def test_empty_identity_is_rejected(self):
        with pytest.raises(ValueError):
            SessionRecord(sid="", audience="visitor")
        with pytest.raises(ValueError):
            SessionRecord(sid="s", audience="")

    def test_from_dict_validates_shape(self):
        with pytest.raises(ValueError, match="mapping"):
            SessionRecord.from_dict(["not", "a", "mapping"])
        with pytest.raises(ValueError, match="audience"):
            SessionRecord.from_dict({"sid": "s"})
        with pytest.raises(ValueError, match="pairs"):
            SessionRecord.from_dict(
                {"sid": "s", "audience": "visitor", "trail": [["lonely"]]}
            )

    def test_bookkeeping_defaults_are_optional_in_payloads(self):
        record = SessionRecord.from_dict({"sid": "s", "audience": "visitor"})
        assert record.trail == ()
        assert record.last_seen == 0.0
        assert record.requests == 0


class TestTrailRestore:
    def test_restore_replaces_the_trail_exactly(self):
        trail = BreadcrumbTrail(8)
        trail.push("old.html", "Old")
        trail.restore([("a.html", "A"), ("b.html", "B")])
        assert trail.entries() == [("a.html", "A"), ("b.html", "B")]

    def test_restore_truncates_from_the_old_end(self):
        trail = BreadcrumbTrail(2)
        trail.restore([("a", "A"), ("b", "B"), ("c", "C")])
        # Same convergence record() would reach: the oldest entries drop.
        assert trail.paths() == ["b", "c"]

    def test_round_trip_through_a_record_is_lossless(self):
        source = BreadcrumbTrail(8)
        for path in ("a", "b", "c"):
            source.push(path, path.upper())
        record = SessionRecord(
            sid="s", audience="visitor", trail=tuple(source.entries())
        )
        target = BreadcrumbTrail(8)
        target.restore(SessionRecord.from_json(record.to_json()).trail)
        assert target.entries() == source.entries()
