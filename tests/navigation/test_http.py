"""The HTTP serving front and its per-session scope tier.

Covers the acceptance bar for serving: routing over
:class:`NavigationApp` (audiences, pages, management endpoints), cookie /
header session identity, the two-level scope hierarchy (a session's
renderer rides the audience scope while its breadcrumb trail weaves in a
private session scope), idle-timeout eviction that releases marker state,
live ``reconfigure`` through the management surface, and — the
concurrency suite — N threads with one session each interleaved with a
mid-flight reconfigure, asserting per-session breadcrumb isolation and
marker-default release after eviction.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.aop import codegen
from repro.baselines import museum_fixture
from repro.core import PageRenderer
from repro.navigation import (
    AudienceBundle,
    AudienceServer,
    BreadcrumbAspect,
    BreadcrumbTrail,
    NavigationApp,
    NavigationError,
    ServingConfig,
    SessionRecord,
)
from repro.navigation.http import SESSION_COOKIE, make_wsgi_server

VISITOR_CURATOR = [
    AudienceBundle("visitor", ("index", "guided-tour")),
    AudienceBundle("curator", ("index",)),
]

GUITAR = "PaintingNode/guitar.html"


@pytest.fixture()
def fixture():
    return museum_fixture()


@pytest.fixture()
def served(fixture):
    with AudienceServer(fixture, VISITOR_CURATOR) as server:
        app = NavigationApp(server)
        try:
            yield server, app
        finally:
            app.close()


def call(app, path, *, method="GET", sid=None, cookie=None, body=None):
    """Drive the WSGI callable directly; returns (status, headers, text)."""
    payload = body.encode() if isinstance(body, str) else (body or b"")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(payload)),
        "wsgi.input": io.BytesIO(payload),
    }
    if sid is not None:
        environ["HTTP_X_REPRO_SESSION"] = sid
    if cookie is not None:
        environ["HTTP_COOKIE"] = cookie
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = headers

    chunks = app(environ, start_response)
    text = b"".join(chunks).decode("utf-8")
    return int(captured["status"].split()[0]), dict(captured["headers"]), text


class TestRouting:
    def test_front_door_lists_audiences(self, served):
        _, app = served
        status, headers, text = call(app, "/")
        assert status == 200
        assert "/visitor/index.html" in text and "/curator/index.html" in text
        assert headers["Content-Type"].startswith("text/html")

    def test_audiences_render_their_own_stacks(self, served):
        _, app = served
        status, _, visitor = call(app, f"/visitor/{GUITAR}", sid="a")
        assert status == 200 and 'rel="next"' in visitor
        status, _, curator = call(app, f"/curator/{GUITAR}", sid="b")
        assert status == 200 and 'rel="next"' not in curator

    def test_bare_and_rooted_audience_paths_serve_home(self, served):
        _, app = served
        for path in ("/visitor", "/visitor/", "/visitor/index.html"):
            status, _, text = call(app, path, sid="a")
            assert status == 200 and "<title>The Museum</title>" in text

    def test_percent_encoded_page_paths_resolve(self, served):
        _, app = served
        status, _, text = call(app, "/visitor/PaintingNode%2Fguitar.html", sid="a")
        assert status == 200 and "Guitar" in text

    def test_unknown_audience_and_page_404(self, served):
        _, app = served
        assert call(app, "/stranger/index.html")[0] == 404
        assert call(app, "/visitor/ghost.html", sid="a")[0] == 404
        assert call(app, "/-/ghost")[0] == 404

    def test_wrong_methods_get_405_with_allow(self, served):
        _, app = served
        status, headers, _ = call(app, "/visitor/index.html", method="POST", sid="a")
        assert status == 405 and headers["Allow"] == "GET"
        assert call(app, "/-/stats", method="POST")[0] == 405
        status, headers, _ = call(app, "/-/reconfigure/visitor", method="GET")
        assert status == 405 and headers["Allow"] == "POST"

    def test_unknown_audience_404s_before_method_check(self, served):
        """405 asserts the resource exists; a missing audience never does."""
        _, app = served
        assert call(app, "/stranger/index.html", method="POST")[0] == 404
        assert call(app, "/stranger/index.html", method="DELETE")[0] == 404


class TestSessions:
    def test_cookie_minted_once_and_honoured(self, served):
        _, app = served
        status, headers, _ = call(app, "/visitor/index.html")
        assert status == 200
        cookie = headers["Set-Cookie"]
        assert cookie.startswith(f"{SESSION_COOKIE}=")
        sid = cookie.split(";")[0].split("=", 1)[1]
        status, headers, _ = call(
            app, f"/visitor/{GUITAR}", cookie=f"{SESSION_COOKIE}={sid}"
        )
        assert status == 200 and "Set-Cookie" not in headers
        assert len(app.sessions()) == 1

    def test_sessions_get_private_breadcrumb_trails(self, served):
        _, app = served
        call(app, "/visitor/index.html", sid="alice")
        _, _, alice = call(app, f"/visitor/{GUITAR}", sid="alice")
        _, _, bob = call(app, f"/visitor/{GUITAR}", sid="bob")
        assert "breadcrumbs" in alice  # alice was at home first
        assert "breadcrumbs" not in bob  # bob's first page has no trail
        # The audience's shared renderer never carries anyone's trail.
        server, _ = served
        base = server.renderer("visitor")
        node = server.fixture.painting_node("guitar")
        assert "breadcrumbs" not in base.render_node(node).html()

    def test_one_cookie_spans_audiences_with_separate_scopes(self, served):
        _, app = served
        call(app, "/visitor/index.html", sid="alice")
        call(app, "/curator/index.html", sid="alice")
        sessions = app.sessions()
        assert {s.audience for s in sessions} == {"visitor", "curator"}
        assert len({id(s.renderer) for s in sessions}) == 2

    def test_session_renderers_join_the_audience_scope(self, served):
        server, app = served
        assert len(server.scope("visitor")) == 1  # the audience renderer
        call(app, "/visitor/index.html", sid="alice")
        call(app, "/visitor/index.html", sid="bob")
        assert len(server.scope("visitor")) == 3
        stats = server.runtime.stats()
        # Audience scopes (one per audience, shared by each stack) plus
        # one session scope per live session.
        assert stats["scopes"]["count"] == len(VISITOR_CURATOR) + 2
        assert stats["instance_scoped"] == stats["deployments"]


class TestSessionCosts:
    def test_404s_do_not_open_sessions(self, served):
        """A request that will 404 must not cost a renderer + deployment."""
        _, app = served
        assert call(app, "/visitor/ghost.html", sid="nobody")[0] == 404
        assert call(app, "/visitor/rooms%2Fnope.html")[0] == 404
        assert app.sessions() == []

    def test_session_cap_refuses_with_503(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server, max_sessions=2)
            assert call(app, "/visitor/index.html", sid="a")[0] == 200
            assert call(app, "/visitor/index.html", sid="b")[0] == 200
            status, _, text = call(app, "/visitor/index.html", sid="c")
            assert status == 503 and "cap" in text
            # Existing sessions keep being served at the cap.
            assert call(app, "/visitor/index.html", sid="a")[0] == 200
            assert len(app.sessions()) == 2
            app.close()

    def test_cap_admits_again_after_idle_eviction(self, fixture):
        clock = [0.0]
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(
                server,
                max_sessions=1,
                session_idle_timeout=100.0,
                clock=lambda: clock[0],
            )
            assert call(app, "/visitor/index.html", sid="a")[0] == 200
            assert call(app, "/visitor/index.html", sid="b")[0] == 503
            clock[0] = 200.0  # a went idle; b takes the slot
            assert call(app, "/visitor/index.html", sid="b")[0] == 200
            app.close()


class TestEviction:
    def test_idle_sessions_are_evicted_and_marker_state_released(self, fixture):
        clock = [0.0]
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(
                server, session_idle_timeout=100.0, clock=lambda: clock[0]
            )
            call(app, f"/visitor/{GUITAR}", sid="alice")
            (session,) = app.sessions()
            marker = session.scope.attr
            renderer = session.renderer
            # Codegen tier: the session scope's marker default is live on
            # the class and its stamp on the instance (the generic tier
            # dispatches on ids and never stamps).
            if codegen.codegen_enabled():
                assert hasattr(PageRenderer, marker)
                assert marker in vars(renderer)
            clock[0] = 101.0
            assert app.evict_idle() == 1
            assert app.sessions() == []
            # Marker default gone from the class, stamp gone from the
            # instance, renderer out of the audience scope.
            assert not hasattr(PageRenderer, marker)
            assert marker not in vars(renderer)
            assert renderer not in server.scope("visitor")
            assert len(server.scope("visitor")) == 1
            # The evicted renderer is back to plain rendering.
            node = fixture.painting_node("guitar")
            assert "<nav>" not in renderer.render_node(node).html()
            app.close()

    def test_requests_evict_opportunistically_and_reopen_fresh(self, fixture):
        clock = [0.0]
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(
                server, session_idle_timeout=100.0, clock=lambda: clock[0]
            )
            call(app, "/visitor/index.html", sid="alice")
            call(app, f"/visitor/{GUITAR}", sid="alice")
            clock[0] = 500.0
            # Alice comes back long after the timeout: her old scope was
            # evicted in passing and the new session starts trail-less.
            _, _, text = call(app, f"/visitor/{GUITAR}", sid="alice")
            assert "breadcrumbs" not in text
            stats = app.stats()
            assert stats["sessions"]["evicted_total"] == 1
            assert stats["sessions"]["active"] == 1
            # The served-request total is monotonic across evictions: two
            # requests from the evicted session plus one from the fresh one.
            assert stats["sessions"]["requests"] == 3
            app.close()


class TestManagementSurface:
    def test_stats_reports_scopes_sessions_and_pools(self, served):
        _, app = served
        call(app, f"/visitor/{GUITAR}", sid="alice")
        status, headers, text = call(app, "/-/stats")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        stats = json.loads(text)
        assert stats["audiences"]["visitor"]["access_structures"] == [
            "index",
            "guided-tour",
        ]
        assert stats["audiences"]["visitor"]["scope_instances"] == 2
        assert stats["sessions"]["active"] == 1
        assert stats["sessions"]["by_audience"] == {"visitor": 1}
        runtime = stats["runtime"]
        assert runtime["instance_scoped"] == runtime["deployments"]
        # Pool counters ride the generated wrappers; the generic tier
        # reports the aggregate keys with no per-shadow pools behind them.
        if codegen.codegen_enabled():
            assert runtime["pools"]["count"] >= 1
        else:
            assert runtime["pools"]["count"] >= 0
        assert runtime["scopes"]["instances"] >= 3

    def test_reconfigure_changes_only_the_target_audience(self, served):
        _, app = served
        call(app, "/visitor/index.html", sid="alice")
        status, _, text = call(
            app, "/-/reconfigure/curator", method="POST", body="indexed-guided-tour"
        )
        assert status == 200
        assert json.loads(text)["access_structures"] == ["indexed-guided-tour"]
        _, _, curator = call(app, f"/curator/{GUITAR}", sid="bob")
        assert 'rel="next"' in curator
        # Visitor stack — and alice's live trail — are untouched.
        _, _, visitor = call(app, f"/visitor/{GUITAR}", sid="alice")
        assert 'rel="next"' in visitor and "breadcrumbs" in visitor

    def test_reconfigure_keeps_session_trails_above_audience_nav(self, served):
        """Live sessions keep the documented stacking across reconfigures.

        Session aspects deploy above the audience tier, so the breadcrumb
        block renders *after* the audience's navigation.  A reconfigure of
        the session's own audience re-weaves both tiers; the order must
        not invert for existing sessions (nor differ from fresh ones).
        """
        _, app = served
        call(app, "/visitor/index.html", sid="alice")

        def block_order(html):
            return html.index("<nav>") < html.index('<nav class="breadcrumbs"')

        _, _, before = call(app, f"/visitor/{GUITAR}", sid="alice")
        assert block_order(before)
        call(
            app,
            "/-/reconfigure/visitor",
            method="POST",
            body="index,guided-tour",
        )
        _, _, after = call(app, f"/visitor/{GUITAR}", sid="alice")
        assert block_order(after), "reconfigure inverted the scope tiers"
        # A session opened after the reconfigure renders the same order.
        call(app, "/visitor/index.html", sid="carol")
        _, _, fresh = call(app, f"/visitor/{GUITAR}", sid="carol")
        assert block_order(fresh)

    def test_reconfigure_restacks_only_the_target_audiences_sessions(
        self, served, monkeypatch
    ):
        """Other audiences' session aspects are not explicitly re-added."""
        server, app = served
        call(app, "/visitor/index.html", sid="alice")
        call(app, "/curator/index.html", sid="bob")
        added = []
        real_add = server._tx._add

        def counting_add(aspect, *args, **kwargs):
            added.append(type(aspect).__name__)
            return real_add(aspect, *args, **kwargs)

        monkeypatch.setattr(server._tx, "_add", counting_add)
        server.reconfigure("curator", ("indexed-guided-tour",))
        # One NavigationAspect for the new stack + exactly one breadcrumb
        # re-stack (bob's); alice's visitor session is never re-added.
        assert added.count("BreadcrumbAspect") == 1

    def test_deploy_scoped_resolves_one_shot_iterables_once(self, served):
        """A generator argument must not yield an empty scope later."""
        server, app = served
        renderer = server.adopt_renderer("visitor")
        aspect = BreadcrumbAspect()
        deployment = server.deploy_scoped(
            aspect, (r for r in [renderer]), audience="visitor"
        )
        assert deployment.scope is not None and len(deployment.scope) == 1
        server.reconfigure("visitor", ("index",))
        (live,) = [d for d in server.runtime.deployments if d.aspect is aspect]
        # The re-woven deployment rides the same resolved scope object.
        assert live.scope is deployment.scope and len(live.scope) == 1
        server.undeploy_scoped(aspect)
        server.release_renderer("visitor", renderer)

    def test_reconfigure_accepts_json_bodies(self, served):
        _, app = served
        status, _, _ = call(
            app,
            "/-/reconfigure/curator",
            method="POST",
            body=json.dumps({"access_structures": ["guided-tour"]}),
        )
        assert status == 200
        _, _, curator = call(app, f"/curator/{GUITAR}", sid="bob")
        assert 'rel="next"' in curator

    def test_bad_reconfigure_requests_leave_the_stack_intact(self, served):
        server, app = served
        assert call(app, "/-/reconfigure/stranger", method="POST", body="index")[
            0
        ] == 404
        assert call(app, "/-/reconfigure/curator", method="POST", body="")[0] == 400
        status, _, _ = call(
            app, "/-/reconfigure/curator", method="POST", body="no-such-structure"
        )
        assert status == 400
        assert server.bundle("curator").access_structures == ("index",)
        assert call(app, f"/curator/{GUITAR}", sid="bob")[0] == 200


class TestSessionScopeConcurrency:
    """The satellite suite: N session threads, a reconfigure mid-flight."""

    def test_threaded_sessions_stay_isolated_across_reconfigure(self, fixture):
        paintings = [
            "PaintingNode/guitar.html",
            "PaintingNode/guernica.html",
            "PaintingNode/violin.html",
            "PaintingNode/memory.html",
            "PaintingNode/elephants.html",
            "PaintingNode/harlequin.html",
        ]
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            errors: list[BaseException] = []
            start = threading.Barrier(len(paintings) + 1)

            def browse(index: int, own_page: str) -> None:
                sid = f"user{index}"
                audience = "visitor" if index % 2 == 0 else "curator"
                try:
                    start.wait()
                    for _ in range(25):
                        status, _, _ = call(app, f"/{audience}/index.html", sid=sid)
                        assert status == 200
                        status, _, _ = call(app, f"/{audience}/{own_page}", sid=sid)
                        assert status == 200
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=browse, args=(i, page))
                for i, page in enumerate(paintings)
            ]
            for thread in threads:
                thread.start()
            start.wait()
            # Mid-flight: swap the curator stack while every session is
            # hammering its audience.
            call(
                app,
                "/-/reconfigure/curator",
                method="POST",
                body="indexed-guided-tour",
            )
            for thread in threads:
                thread.join()
            assert errors == []

            # Per-session breadcrumb isolation: each trail only ever saw
            # its own session's pages — never another session's painting.
            sessions = {s.sid: s for s in app.sessions()}
            assert len(sessions) == len(paintings)
            for i, own_page in enumerate(paintings):
                trail = sessions[f"user{i}"].breadcrumbs.trail.paths()
                others = set(paintings) - {own_page}
                assert not (set(trail) & others), (i, trail)
                assert set(trail) <= {"index.html", own_page}

            # Quiesced: the reconfigure took effect for curator sessions
            # without touching visitor ones.
            _, _, curator = call(app, "/curator/PaintingNode/guitar.html", sid="user1")
            assert 'rel="next"' in curator
            _, _, visitor = call(app, "/visitor/PaintingNode/guitar.html", sid="user0")
            assert 'rel="next"' in visitor and "breadcrumbs" in visitor

            # Evict everyone: every session marker default is released.
            markers = [s.scope.attr for s in app.sessions()]
            renderers = [s.renderer for s in app.sessions()]
            app.close()
            for marker in markers:
                assert not hasattr(PageRenderer, marker)
            for renderer in renderers:
                # No stray scope stamps left on the evicted instances.
                stamps = [k for k in vars(renderer) if k.startswith("_aop_scope_")]
                assert stamps == []
            assert len(server.scope("visitor")) == 1
            assert len(server.scope("curator")) == 1
        assert not hasattr(PageRenderer.render_node, "__woven__")


class TestOverRealSockets:
    def test_threaded_wsgi_server_serves_concurrent_sessions(self, fixture):
        with AudienceServer(fixture, VISITOR_CURATOR) as server:
            app = NavigationApp(server)
            httpd = make_wsgi_server(app)
            port = httpd.server_address[1]
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            base = f"http://127.0.0.1:{port}"

            def get(path, sid):
                request = urllib.request.Request(base + path)
                request.add_header("X-Repro-Session", sid)
                with urllib.request.urlopen(request) as response:
                    return response.status, response.read().decode("utf-8")

            try:
                status, visitor = get(f"/visitor/{GUITAR}", "alice")
                assert status == 200 and 'rel="next"' in visitor
                status, curator = get(f"/curator/{GUITAR}", "bob")
                assert status == 200 and 'rel="next"' not in curator
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    get("/visitor/ghost.html", "alice")
                assert excinfo.value.code == 404
            finally:
                httpd.shutdown()
                httpd.server_close()
                app.close()
        assert not hasattr(PageRenderer.render_node, "__woven__")


class TestBreadcrumbTrail:
    def test_trail_bounds_and_deduplicates(self):
        trail = BreadcrumbTrail(3)
        for path in ("a", "b", "c", "b", "d"):
            trail.push(path, path.upper())
        # "b" moved to the end on revisit; the bound evicted "a".
        assert trail.paths() == ["c", "b", "d"]
        assert trail.entries()[-1] == ("d", "D")
        trail.clear()
        assert len(trail) == 0

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            BreadcrumbTrail(0)

    def test_record_returns_prior_crumbs_atomically(self):
        trail = BreadcrumbTrail(4)
        assert trail.record("a", "A") == []
        assert trail.record("b", "B") == [("a", "A")]
        # Revisiting excludes the page itself from its own crumbs.
        assert trail.record("a", "A") == [("b", "B")]
        assert trail.paths() == ["b", "a"]

    def test_concurrent_records_lose_no_entries(self):
        trail = BreadcrumbTrail(64)
        start = threading.Barrier(4)

        def hammer(prefix):
            start.wait()
            for n in range(8):
                trail.record(f"{prefix}{n}", prefix)

        threads = [
            threading.Thread(target=hammer, args=(p,)) for p in "wxyz"
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every distinct page survived the interleaving.
        assert len(trail) == 32


WALK = ["index.html", f"{GUITAR}", "PaintingNode/guernica.html"]


def fresh_app(fixture, config=None):
    """A second live stack, as another worker process would build it."""
    server = AudienceServer(fixture, VISITOR_CURATOR, config=config)
    return server, NavigationApp(server)


class TestSessionPortability:
    """SessionRecord round-trips: snapshot on one app, restore on another.

    The cluster acceptance bar in miniature: a session moved across
    workers must render its next page byte-for-byte as it would have on
    the worker it left — including after the receiving worker
    reconfigured the audience's stack.
    """

    def walk(self, app, sid):
        for page in WALK:
            assert call(app, f"/visitor/{page}", sid=sid)[0] == 200

    def test_snapshot_captures_live_trails(self, served):
        _, app = served
        self.walk(app, "alice")
        (record,) = app.snapshot_sessions()
        assert record.sid == "alice" and record.audience == "visitor"
        assert record.requests == len(WALK)
        assert [path for path, _ in record.trail] == [
            "index.html",
            "PaintingNode/guitar.html",
            "PaintingNode/guernica.html",
        ]

    def test_restored_session_renders_byte_identical_pages(self, served, fixture):
        server_a, app_a = served
        self.walk(app_a, "alice")
        (record,) = app_a.snapshot_sessions()
        server_b, app_b = fresh_app(fixture)
        try:
            # Ship the record as JSON, exactly as the cluster front does.
            app_b.restore_session(
                type(record).from_json(record.to_json())
            )
            status_a, _, page_a = call(
                app_a, "/visitor/PaintingNode/harlequin.html", sid="alice"
            )
            status_b, _, page_b = call(
                app_b, "/visitor/PaintingNode/harlequin.html", sid="alice"
            )
            assert status_a == status_b == 200
            assert page_a == page_b
            assert 'class="breadcrumbs"' in page_b
        finally:
            app_b.close()
            server_b.close()

    def test_restore_after_reconfigure_matches_native_sessions(
        self, served, fixture
    ):
        """Restoring into a re-woven stack keeps the trail byte-for-byte.

        The receiving worker may have reconfigured the audience since the
        snapshot was taken; the restored session must render exactly like
        a session that had walked the same pages natively on that worker.
        """
        _, app_a = served
        self.walk(app_a, "alice")
        (record,) = app_a.snapshot_sessions()
        server_b, app_b = fresh_app(fixture)
        try:
            server_b.reconfigure("visitor", ("indexed-guided-tour",))
            app_b.restore_session(record)
            self.walk(app_b, "native")
            _, _, restored = call(
                app_b, "/visitor/PaintingNode/harlequin.html", sid="alice"
            )
            _, _, native = call(
                app_b, "/visitor/PaintingNode/harlequin.html", sid="native"
            )
            assert restored == native
            assert 'class="breadcrumbs"' in restored
        finally:
            app_b.close()
            server_b.close()

    def test_restore_into_a_live_session_replaces_its_trail(self, served):
        _, app = served
        self.walk(app, "alice")
        (record,) = app.snapshot_sessions()
        # Alice keeps browsing; a (stale) restore rewinds her trail.
        call(app, "/visitor/PaintingNode/memory.html", sid="alice")
        app.restore_session(record)
        (after,) = app.snapshot_sessions()
        assert after.trail == record.trail
        assert len(app.sessions()) == 1

    def test_restore_validates_audience_and_capacity(self, served, fixture):
        from repro.navigation.http import SessionCapacityError

        _, app = served
        with pytest.raises(NavigationError):
            app.restore_session(
                SessionRecord(sid="ghost", audience="stranger")
            )
        server_b, app_b = fresh_app(
            fixture, config=ServingConfig(max_sessions=1)
        )
        try:
            call(app_b, "/visitor/index.html", sid="resident")
            with pytest.raises(SessionCapacityError):
                app_b.restore_session(
                    SessionRecord(sid="migrant", audience="visitor")
                )
        finally:
            app_b.close()
            server_b.close()

    def test_sessions_endpoint_publishes_records(self, served):
        _, app = served
        self.walk(app, "alice")
        status, headers, text = call(app, "/-/sessions")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        (payload,) = json.loads(text)["sessions"]
        record = SessionRecord.from_dict(payload)
        assert record == app.snapshot_sessions()[0]

    def test_restore_endpoint_round_trips_the_sessions_payload(
        self, served, fixture
    ):
        _, app_a = served
        self.walk(app_a, "alice")
        call(app_a, "/curator/index.html", sid="bob")
        _, _, snapshot = call(app_a, "/-/sessions")
        server_b, app_b = fresh_app(fixture)
        try:
            status, _, text = call(
                app_b, "/-/sessions/restore", method="POST", body=snapshot
            )
            assert status == 200
            result = json.loads(text)
            assert sorted(result["restored"]) == ["alice", "bob"]
            assert result["errors"] == []
            assert app_b.snapshot_sessions()[0].trail
        finally:
            app_b.close()
            server_b.close()

    def test_restore_endpoint_is_per_record_best_effort(self, served):
        _, app = served
        body = json.dumps(
            {
                "sessions": [
                    {"sid": "ok", "audience": "visitor"},
                    {"sid": "lost", "audience": "stranger"},
                ]
            }
        )
        status, _, text = call(
            app, "/-/sessions/restore", method="POST", body=body
        )
        assert status == 200
        result = json.loads(text)
        assert result["restored"] == ["ok"]
        assert result["errors"][0]["sid"] == "lost"
        assert "stranger" in result["errors"][0]["error"]

    def test_restore_endpoint_rejects_malformed_bodies(self, served):
        _, app = served
        assert call(app, "/-/sessions/restore", method="POST")[0] == 400
        assert (
            call(
                app, "/-/sessions/restore", method="POST", body="not json"
            )[0]
            == 400
        )
        assert (
            call(
                app,
                "/-/sessions/restore",
                method="POST",
                body=json.dumps({"sessions": [{"sid": "s"}]}),
            )[0]
            == 400
        )
        assert call(app, "/-/sessions/restore", method="GET")[0] == 405


class TestLatencyStats:
    def test_stats_publish_per_audience_request_latency(self, served):
        _, app = served
        for _ in range(3):
            call(app, f"/visitor/{GUITAR}", sid="alice")
        call(app, f"/curator/{GUITAR}", sid="bob")
        stats = json.loads(call(app, "/-/stats")[2])
        visitor = stats["audiences"]["visitor"]
        assert visitor["requests"] == 3
        assert visitor["latency"]["window"] == 3
        assert visitor["latency"]["p50_us"] > 0
        assert visitor["latency"]["p99_us"] >= visitor["latency"]["p50_us"]
        assert stats["audiences"]["curator"]["requests"] == 1

    def test_latency_window_is_bounded_but_count_is_lifetime(self):
        from repro.navigation.http import LatencyWindow

        window = LatencyWindow(size=4)
        for n in range(10):
            window.record(float(n))
        summary = window.summary()
        assert summary["count"] == 10
        assert summary["window"] == 4
        # Only the last four samples (6..9) survive in the window.
        assert summary["p50_us"] == 7.0
        assert summary["p99_us"] == 9.0

    def test_quantiles_of_an_empty_window_are_zero(self):
        from repro.navigation.http import LatencyWindow, quantile

        assert quantile([], 0.5) == 0.0
        summary = LatencyWindow().summary()
        assert summary == {
            "count": 0,
            "window": 0,
            "p50_us": 0.0,
            "p99_us": 0.0,
        }
