"""Property-based tests for the navigation runtime.

A model-based state machine checks the back/forward history against a
reference implementation, and context traversal invariants are checked on
random member sequences.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.baselines import synthetic_museum
from repro.hypermedia import GuidedTour, Index, IndexedGuidedTour, NavigationalContext
from repro.navigation import History, NavigationError


class HistoryModel(RuleBasedStateMachine):
    """The real History against an obviously-correct list+cursor model."""

    def __init__(self):
        super().__init__()
        self.history: History[int] = History()
        self.entries: list[int] = []
        self.cursor = -1
        self.counter = 0

    @rule()
    def visit(self):
        self.counter += 1
        self.history.visit(self.counter)
        self.entries = self.entries[: self.cursor + 1] + [self.counter]
        self.cursor = len(self.entries) - 1

    @precondition(lambda self: self.cursor > 0)
    @rule()
    def back(self):
        value = self.history.back()
        self.cursor -= 1
        assert value == self.entries[self.cursor]

    @precondition(lambda self: 0 <= self.cursor < len(self.entries) - 1)
    @rule()
    def forward(self):
        value = self.history.forward()
        self.cursor += 1
        assert value == self.entries[self.cursor]

    @precondition(lambda self: self.cursor <= 0)
    @rule()
    def back_at_start_fails(self):
        try:
            self.history.back()
        except NavigationError:
            pass
        else:
            raise AssertionError("back() should have failed")

    @precondition(lambda self: self.cursor == len(self.entries) - 1)
    @rule()
    def forward_at_end_fails(self):
        try:
            self.history.forward()
        except NavigationError:
            pass
        else:
            raise AssertionError("forward() should have failed")

    @invariant()
    def current_agrees(self):
        if self.cursor >= 0:
            assert self.history.current == self.entries[self.cursor]
            assert self.history.trail() == self.entries[: self.cursor + 1]
        else:
            assert self.history.is_empty


TestHistoryModel = HistoryModel.TestCase


# -- context traversal invariants ---------------------------------------------


@st.composite
def member_lists(draw):
    n = draw(st.integers(2, 12))
    fixture = synthetic_museum(1, n)
    node_class = fixture.nav.node_class("PaintingNode")
    members = [
        node_class.instantiate(e, fixture.store)
        for e in fixture.store.all("Painting")
    ]
    return members


@settings(max_examples=40, deadline=None)
@given(member_lists(), st.booleans())
def test_guided_tour_walk_is_a_permutation(members, circular):
    context = NavigationalContext(
        "walk", members, GuidedTour(name="walk", circular=circular)
    )
    seen = [members[0]]
    node = members[0]
    for __ in range(len(members) - 1):
        node = context.next_after(node)
        assert node is not None
        seen.append(node)
    assert [n.node_id for n in seen] == [n.node_id for n in members]
    # The step after the last one: wraps when circular, ends otherwise.
    following = context.next_after(seen[-1])
    if circular:
        assert following == members[0]
    else:
        assert following is None


@settings(max_examples=40, deadline=None)
@given(member_lists())
def test_next_and_previous_are_inverse(members):
    context = NavigationalContext("ctx", members, GuidedTour(name="ctx"))
    for node in members[:-1]:
        assert context.previous_before(context.next_after(node)) == node


@settings(max_examples=40, deadline=None)
@given(member_lists())
def test_index_anchors_are_members_minus_self(members):
    structure = Index(name="ctx", label_attribute="title")
    for node in members:
        hrefs = {a.href for a in structure.anchors_on(node, members)}
        expected = {m.uri for m in members if m != node}
        assert hrefs == expected


@settings(max_examples=40, deadline=None)
@given(member_lists())
def test_igt_anchors_superset_of_index_anchors(members):
    index = Index(name="ctx", label_attribute="title")
    igt = IndexedGuidedTour(name="ctx", label_attribute="title")
    for node in members:
        index_set = {(a.href, a.rel) for a in index.anchors_on(node, members)}
        igt_set = {(a.href, a.rel) for a in igt.anchors_on(node, members)}
        assert index_set <= igt_set
        extras = igt_set - index_set
        assert extras and all(rel in ("prev", "next") for __, rel in extras)
