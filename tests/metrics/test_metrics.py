"""Tests for concern classification, scattering metrics and change impact."""

import pytest

from repro.baselines import TangledMuseumSite, museum_fixture
from repro.core import default_museum_spec, export_museum_space
from repro.metrics import (
    Concern,
    all_impacts,
    aspect_impact,
    classify_file,
    classify_line,
    format_ratio,
    format_table,
    measure_scattering,
    tangled_impact,
    xlink_impact,
)
from repro.xmlcore import serialize


@pytest.fixture(scope="module")
def fixture():
    return museum_fixture()


class TestClassifier:
    def test_anchor_line_is_navigation(self):
        assert (
            classify_line('<li><a href="x.html">X</a></li>', in_nav_block=False)
            is Concern.NAVIGATION
        )

    def test_nav_region_lines_are_navigation(self):
        line = "<p>inside nav</p>"
        assert classify_line(line, in_nav_block=True) is Concern.NAVIGATION

    def test_xlink_markup_is_navigation(self):
        line = '<loc xlink:type="locator" xlink:href="p.xml"/>'
        assert classify_line(line, in_nav_block=False) is Concern.NAVIGATION

    def test_prose_is_content(self):
        line = "<p>Guernica, 1937.</p>"
        assert classify_line(line, in_nav_block=False) is Concern.CONTENT

    def test_scaffolding_is_structure(self):
        assert classify_line("<html>", in_nav_block=False) is Concern.STRUCTURE
        assert classify_line("</dl>", in_nav_block=False) is Concern.STRUCTURE
        assert classify_line("", in_nav_block=False) is Concern.STRUCTURE

    def test_classify_file_tracks_nav_regions(self):
        text = "<html>\n<nav>\n<p>menu</p>\n</nav>\n<p>content</p>\n</html>"
        result = classify_file("x.html", text)
        assert result.navigation_lines == 3
        assert result.content_lines == 1
        assert result.is_tangled


class TestScattering:
    def test_tangled_site_scatters_navigation_everywhere(self, fixture):
        pages = {p.path: p.html for p in TangledMuseumSite(fixture).build().values()}
        report = measure_scattering(pages)
        assert report.cdc == report.total_files  # every page has navigation
        assert report.tangling_ratio == 1.0

    def test_separated_artifacts_confine_navigation(self, fixture):
        space = export_museum_space(fixture, default_museum_spec("index"))
        artifacts = {
            uri: serialize(space.document(uri), indent="  ")
            for uri in space.uris()
        }
        report = measure_scattering(artifacts)
        assert report.cdc == 1
        assert report.navigation_only_files() == ["links.xml"]
        assert report.tangled_files == 0

    def test_navigation_share_bounds(self, fixture):
        pages = {p.path: p.html for p in TangledMuseumSite(fixture).build().values()}
        report = measure_scattering(pages)
        assert 0.0 < report.navigation_share < 1.0

    def test_empty_build(self):
        report = measure_scattering({})
        assert report.cdc == 0
        assert report.tangling_ratio == 0.0
        assert report.navigation_share == 0.0


class TestChangeImpact:
    def test_tangled_touches_every_painting_page(self, fixture):
        impact = tangled_impact(fixture)
        # All 9 painting pages change; painter pages and home do not.
        assert impact.authored.files_touched == 9
        assert impact.authored.files_total == 14
        assert impact.built.files_touched == 9

    def test_xlink_touches_one_authored_artifact(self, fixture):
        impact = xlink_impact(fixture)
        assert impact.authored.files_touched == 1
        assert impact.authored.touched_paths() == ["links.xml"]

    def test_aspect_touches_one_spec_line_pair(self, fixture):
        impact = aspect_impact(fixture)
        assert impact.authored.files_touched == 1
        assert impact.authored.lines_changed == 2  # one line replaced

    def test_built_pages_change_comparably_everywhere(self, fixture):
        """The separated approaches still deliver the requested links."""
        impacts = {i.approach: i for i in all_impacts(fixture)}
        assert impacts["xlink"].built.files_touched == impacts[
            "aspect"
        ].built.files_touched

    def test_separated_authored_impact_constant_in_site_size(self):
        from repro.baselines import synthetic_museum

        small = aspect_impact(synthetic_museum(3, 3))
        large = aspect_impact(synthetic_museum(10, 10))
        assert small.authored.lines_changed == large.authored.lines_changed
        # While the tangled impact grows with the number of pages:
        tangled_small = tangled_impact(synthetic_museum(3, 3))
        tangled_large = tangled_impact(synthetic_museum(10, 10))
        assert (
            tangled_large.authored.files_touched
            > tangled_small.authored.files_touched
        )


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "n"], [["tangled", 9], ["aspect", 1]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "tangled" in table and "aspect" in table

    def test_format_ratio(self):
        assert format_ratio(9, 1) == "9.00x"
        assert format_ratio(1, 0) == "n/a"
