"""T-Q — §5's question: are aspect tools powerful enough for navigation?

One test per OOHDM primitive the paper enumerates, each asserting the
primitive is (a) expressed in the separated navigation artifact and
(b) delivered into pages by the weaver — with the base program unchanged.
"""

import pytest

from repro.baselines import museum_fixture
from repro.core import (
    NavigationSpec,
    build_plain_site,
    build_woven_site,
    default_museum_spec,
)
from repro.navigation import NavigationSession, UserAgent


@pytest.fixture(scope="module")
def fixture():
    return museum_fixture()


class TestPrimitiveNodes:
    """OOHDM: nodes are views of conceptual classes."""

    def test_node_view_selects_attributes(self, fixture):
        guitar = fixture.painting_node("guitar")
        assert set(guitar.attributes()) == {"title", "year", "movement", "painter"}

    def test_same_entity_supports_multiple_views(self, fixture):
        from repro.hypermedia import NodeClass

        card = NodeClass("PaintingCard", "Painting").view("title")
        node = card.instantiate(fixture.store.get("Painting", "guitar"), fixture.store)
        assert set(node.attributes()) == {"title"}


class TestPrimitiveLinks:
    """OOHDM: links are views of conceptual relationships."""

    def test_link_class_surfaces_via_spec(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("index"))
        page = site.page("PaintingNode/guitar.html")
        links = [a for a in page.anchors() if a.rel == "link"]
        assert [link.label for link in links] == ["Pablo Picasso"]

    def test_unexposed_link_class_stays_hidden(self, fixture):
        spec = NavigationSpec().set_access("by-painter", "index")
        site = build_woven_site(fixture, spec)
        page = site.page("PaintingNode/guitar.html")
        assert all(a.rel != "link" for a in page.anchors())


class TestPrimitiveAccessStructures:
    """OOHDM/HDM: indexes, guided tours, indexed guided tours, menus."""

    def test_index(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("index"))
        rels = {a.rel for a in site.page("PaintingNode/guitar.html").anchors()}
        assert "entry" in rels and "next" not in rels

    def test_guided_tour(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("guided-tour"))
        rels = {a.rel for a in site.page("PaintingNode/guitar.html").anchors()}
        assert "next" in rels and "entry" not in rels

    def test_indexed_guided_tour(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))
        rels = {a.rel for a in site.page("PaintingNode/guitar.html").anchors()}
        assert {"entry", "next", "prev"} <= rels

    def test_circular_tour_option(self, fixture):
        spec = NavigationSpec().set_access(
            "by-painter", "guided-tour", label_attribute="title", circular=True
        )
        site = build_woven_site(fixture, spec)
        # The *first* painting has a prev only in the circular variant.
        first = site.page("PaintingNode/avignon.html")
        assert any(a.rel == "prev" for a in first.anchors())


class TestPrimitiveContexts:
    """OOHDM's contribution: navigational contexts with order."""

    def test_two_families_coexist(self, fixture):
        spec = (
            NavigationSpec()
            .set_access("by-painter", "guided-tour", label_attribute="title")
            .set_access("by-movement", "guided-tour", label_attribute="title")
        )
        contexts = spec.build_contexts(fixture)
        guitar = fixture.painting_node("guitar")
        memberships = [name for name, c in contexts.items() if guitar in c]
        assert sorted(memberships) == ["by-movement:cubism", "by-painter:picasso"]

    def test_context_dependent_next_through_sessions(self, fixture):
        spec = (
            NavigationSpec()
            .set_access("by-painter", "guided-tour")
            .set_access("by-movement", "guided-tour")
        )
        contexts = spec.build_contexts(fixture)
        guitar = fixture.painting_node("guitar")
        by_painter = NavigationSession(fixture.nav)
        by_painter.visit(guitar, contexts["by-painter:picasso"])
        by_movement = NavigationSession(fixture.nav)
        by_movement.visit(guitar, contexts["by-movement:cubism"])
        assert by_painter.next().node.node_id == "guernica"
        assert by_movement.next().node.node_id == "clarinet"


class TestCompositionMechanism:
    """§5 question 4: functionality and navigation become one program."""

    def test_weaving_is_additive(self, fixture):
        from repro.xmlcore import serialize

        plain = build_plain_site(fixture)
        woven = build_woven_site(fixture, default_museum_spec("index"))
        for path in plain.paths():
            assert serialize(plain.page(path).content_region()) == serialize(
                woven.page(path).content_region()
            )

    def test_weaving_is_reversible(self, fixture):
        build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))
        plain = build_plain_site(fixture)
        assert sum(len(p.anchors()) for p in plain.pages()) == 0

    def test_end_to_end_walkthrough(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))
        agent = UserAgent(site.provider())
        agent.open("index.html")
        agent.click("Pablo Picasso")
        agent.click("Les Demoiselles d'Avignon")
        agent.follow_rel("next")   # guitar
        agent.follow_rel("next")   # guernica
        assert agent.current.title == "Guernica"
        agent.back()
        assert agent.current.title == "Guitar"
