"""Integration: the three architectures agree on navigation semantics.

Whatever the composition mechanism — tangled markup, XLink linkbase or
aspect weaving — the user must end up able to make the same moves.  These
tests drive the same browsing scenarios through all three sites.
"""

import pytest

from repro.baselines import TangledMuseumSite, museum_fixture
from repro.core import build_woven_site, build_xlink_site, default_museum_spec
from repro.navigation import UserAgent


@pytest.fixture(scope="module")
def fixture():
    return museum_fixture()


def agents_for(fixture, access: str):
    """(name, agent, guitar-page-uri) for each architecture."""
    tangled = TangledMuseumSite(fixture, access).provider()
    woven = build_woven_site(fixture, default_museum_spec(access)).provider()
    xlink = build_xlink_site(fixture, default_museum_spec(access)).provider()
    return [
        ("tangled", UserAgent(tangled), "painting/guitar.html"),
        ("woven", UserAgent(woven), "PaintingNode/guitar.html"),
        ("xlink", UserAgent(xlink), "guitar.html"),
    ]


class TestSharedSemantics:
    def test_guitar_has_sibling_index_everywhere(self, fixture):
        for name, agent, uri in agents_for(fixture, "index"):
            page = agent.open(uri)
            labels = {a.label for a in page.anchors}
            assert {"Guernica", "Les Demoiselles d'Avignon"} <= labels, name

    def test_next_reaches_guernica_everywhere(self, fixture):
        for name, agent, uri in agents_for(fixture, "indexed-guided-tour"):
            agent.open(uri)
            page = agent.follow_rel("next")
            assert "guernica" in page.uri, name

    def test_tour_end_everywhere(self, fixture):
        from repro.navigation import NavigationError

        for name, agent, uri in agents_for(fixture, "indexed-guided-tour"):
            agent.open(uri)
            agent.follow_rel("next")  # guernica, last by year
            with pytest.raises(NavigationError):
                agent.follow_rel("next")

    def test_index_sites_offer_no_tour_everywhere(self, fixture):
        from repro.navigation import NavigationError

        for name, agent, uri in agents_for(fixture, "index"):
            agent.open(uri)
            with pytest.raises(NavigationError):
                agent.follow_rel("next")

    def test_home_reaches_every_painting_everywhere(self, fixture):
        for name, agent, __ in agents_for(fixture, "index"):
            pages = agent.crawl("index.html")
            titles = {page.title for page in pages.values()}
            assert "Guernica" in titles, name
            assert "The Persistence of Memory" in titles, name

    def test_no_dangling_anchors_anywhere(self, fixture):
        for access in ("index", "indexed-guided-tour"):
            for name, agent, __ in agents_for(fixture, access):
                pages = agent.crawl("index.html")
                for page in pages.values():
                    for anchor in page.anchors:
                        href = anchor.href
                        assert href in pages, f"{name}: {page.uri} -> {href}"


class TestDifferences:
    def test_page_counts(self, fixture):
        tangled = TangledMuseumSite(fixture, "index").build()
        woven = build_woven_site(fixture, default_museum_spec("index"))
        xlink = build_xlink_site(fixture, default_museum_spec("index"))
        assert len(tangled) == 14
        assert len(woven) == 14
        assert len(xlink) == 14

    def test_only_separated_builds_are_regenerable(self, fixture):
        """The tangled pages are sources; the others are derived outputs.

        Rebuilding a separated site is deterministic — two builds from the
        same spec are byte-identical — which is what makes 'regenerate'
        a safe answer to the change request.
        """
        spec = default_museum_spec("indexed-guided-tour")
        first = build_woven_site(fixture, spec).as_text()
        second = build_woven_site(fixture, spec).as_text()
        assert first == second
        x_first = build_xlink_site(fixture, spec).as_text()
        x_second = build_xlink_site(fixture, spec).as_text()
        assert x_first == x_second
