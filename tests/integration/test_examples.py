"""Every example script must run cleanly end to end.

Examples are documentation that executes; a broken example is a broken
README.  Each test runs one script in-process (so coverage and failures
point at real lines) with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.fixture(autouse=True)
def quiet_stdout(capsys):
    yield
    capsys.readouterr()


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    path = Path(__file__).parent.parent.parent / "examples" / script
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"


def test_expected_examples_present():
    assert {
        "quickstart.py",
        "museum_change_request.py",
        "xlink_separation.py",
        "context_navigation.py",
        "aspect_tour.py",
        "search_vs_navigation.py",
        "live_weaving.py",
    } <= set(EXAMPLES)
