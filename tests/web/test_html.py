"""Tests for the HTML page model."""

from repro.hypermedia.access import Anchor
from repro.web import (
    HtmlPage,
    anchor_element,
    anchor_list,
    heading,
    nav_block,
    page_skeleton,
    paragraph,
)
from repro.xmlcore import parse_element, serialize


class TestPageConstruction:
    def test_skeleton_has_title_and_body(self):
        html, body = page_skeleton("Guitar")
        body.append(heading(1, "Guitar"))
        page = HtmlPage("painting/guitar.html", html)
        assert page.title == "Guitar"
        assert page.tree.find("h1").text_content() == "Guitar"

    def test_anchor_element_shape(self):
        el = anchor_element(Anchor("Guernica", "guernica.html", "entry"))
        assert serialize(el) == '<a href="guernica.html" rel="entry">Guernica</a>'

    def test_anchor_list(self):
        ul = anchor_list([Anchor("A", "a.html"), Anchor("B", "b.html")])
        assert len(ul.findall("li")) == 2

    def test_page_anchors_extraction(self):
        html, body = page_skeleton("T")
        body.append(anchor_element(Anchor("Next", "n.html", "next")))
        body.append(paragraph("plain text"))
        page = HtmlPage("x.html", html)
        (found,) = page.anchors()
        assert (found.label, found.href, found.rel) == ("Next", "n.html", "next")

    def test_html_round_trips_through_parser(self):
        html, body = page_skeleton("Round & Trip")
        body.append(paragraph("a < b"))
        page = HtmlPage("x.html", html)
        reparsed = parse_element(page.html())
        assert reparsed.find("title").text_content() == "Round & Trip"
        assert reparsed.find("p").text_content() == "a < b"


class TestNavBlock:
    def test_groups_entries_and_steps(self):
        nav = nav_block(
            [
                Anchor("A", "a.html", "entry"),
                Anchor("Previous", "p.html", "prev"),
                Anchor("Next", "n.html", "next"),
            ]
        )
        assert len(nav.findall("ul")) == 1
        assert len(nav.findall("p")) == 2

    def test_empty_nav_is_empty_element(self):
        assert serialize(nav_block([])) == "<nav/>"


class TestContentRegion:
    def test_nav_blocks_stripped(self):
        html, body = page_skeleton("T")
        body.append(paragraph("content"))
        body.append(nav_block([Anchor("A", "a.html", "entry")]))
        page = HtmlPage("x.html", html)
        region = page.content_region()
        assert region.findall("nav") == []
        assert region.text_content() == "content"

    def test_original_tree_not_mutated(self):
        html, body = page_skeleton("T")
        body.append(nav_block([Anchor("A", "a.html", "entry")]))
        page = HtmlPage("x.html", html)
        page.content_region()
        assert len(page.tree.findall("nav")) == 1
