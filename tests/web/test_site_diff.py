"""Tests for static sites, the site provider and the change-impact differ."""

import pytest

from repro.hypermedia.access import Anchor
from repro.navigation import UserAgent
from repro.web import (
    HtmlPage,
    SiteError,
    StaticSite,
    anchor_element,
    diff_builds,
    page_skeleton,
    paragraph,
    unified_diff,
)


def make_page(path: str, title: str, anchors: list[Anchor] = ()) -> HtmlPage:
    html, body = page_skeleton(title)
    body.append(paragraph(f"Content of {title}"))
    for anchor in anchors:
        body.append(anchor_element(anchor))
    return HtmlPage(path, html)


class TestStaticSite:
    def test_add_and_fetch(self):
        site = StaticSite()
        site.add(make_page("index.html", "Home"))
        assert site.page("index.html").title == "Home"

    def test_duplicate_path_rejected(self):
        site = StaticSite()
        site.add(make_page("index.html", "Home"))
        with pytest.raises(SiteError):
            site.add(make_page("index.html", "Again"))

    def test_replace_allows_rebuild(self):
        site = StaticSite()
        site.add(make_page("index.html", "Home"))
        site.replace(make_page("index.html", "New Home"))
        assert site.page("index.html").title == "New Home"

    def test_missing_page_raises(self):
        with pytest.raises(SiteError):
            StaticSite().page("ghost.html")

    def test_as_text_is_differ_input(self):
        site = StaticSite()
        site.add(make_page("a.html", "A"))
        text = site.as_text()
        assert set(text) == {"a.html"}
        assert "<title>A</title>" in text["a.html"]

    def test_check_links_finds_dangling(self):
        site = StaticSite()
        site.add(make_page("a.html", "A", [Anchor("Ghost", "ghost.html", "entry")]))
        (complaint,) = site.check_links()
        assert "ghost.html" in complaint

    def test_check_links_resolves_relative(self):
        site = StaticSite()
        site.add(
            make_page("painting/a.html", "A", [Anchor("Home", "../index.html", "menu")])
        )
        site.add(make_page("index.html", "Home"))
        assert site.check_links() == []

    def test_external_links_ignored(self):
        site = StaticSite()
        site.add(make_page("a.html", "A", [Anchor("W3C", "http://w3.org/", "link")]))
        assert site.check_links() == []


class TestSiteProvider:
    def test_agent_browses_site(self):
        site = StaticSite()
        site.add(make_page("index.html", "Home", [Anchor("A", "a.html", "entry")]))
        site.add(make_page("a.html", "A"))
        agent = UserAgent(site.provider())
        agent.open("index.html")
        assert agent.click("A").title == "A"

    def test_provider_resolves_relative_hrefs(self):
        site = StaticSite()
        site.add(
            make_page("painting/g.html", "G", [Anchor("Home", "../index.html", "menu")])
        )
        site.add(make_page("index.html", "Home"))
        agent = UserAgent(site.provider())
        agent.open("painting/g.html")
        assert agent.click("Home").uri == "index.html"


class TestDiffBuilds:
    def test_identical_builds(self):
        build = {"a.html": "one\ntwo\n"}
        impact = diff_builds(build, dict(build))
        assert impact.files_touched == 0
        assert impact.unchanged == ["a.html"]

    def test_modified_lines_counted(self):
        before = {"a.html": "one\ntwo\nthree\n"}
        after = {"a.html": "one\nTWO\nthree\nfour\n"}
        impact = diff_builds(before, after)
        (delta,) = impact.deltas
        assert delta.status == "modified"
        assert delta.lines_added == 2   # TWO + four
        assert delta.lines_removed == 1  # two

    def test_added_and_removed_files(self):
        impact = diff_builds({"old.html": "x\ny\n"}, {"new.html": "z\n"})
        statuses = {d.path: d.status for d in impact.deltas}
        assert statuses == {"old.html": "removed", "new.html": "added"}
        assert impact.lines_removed == 2
        assert impact.lines_added == 1

    def test_summary_shape(self):
        impact = diff_builds({"a": "1\n", "b": "1\n"}, {"a": "2\n", "b": "1\n"})
        assert impact.summary() == "1/2 files touched, +1/-1 lines"

    def test_unified_diff_output(self):
        text = unified_diff({"a": "one\ntwo"}, {"a": "one\nTWO"}, "a")
        assert "-two" in text and "+TWO" in text

    def test_touched_paths_sorted(self):
        impact = diff_builds(
            {"b": "1", "a": "1", "c": "1"}, {"b": "2", "a": "2", "c": "1"}
        )
        assert impact.touched_paths() == ["a", "b"]
