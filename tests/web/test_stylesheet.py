"""Tests for the XSL-lite template engine."""

import pytest

from repro.web import Stylesheet, StylesheetError
from repro.xmlcore import build, parse, serialize

PAINTING = parse(
    """
<painting id="guitar">
  <title>Guitar</title>
  <year>1913</year>
  <movement>cubism</movement>
</painting>
"""
)


class TestBasicRules:
    def test_single_rule_transforms_root(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def rule(ctx, el):
            return build("article", {}, ctx.value_of(el, "title/text()"))

        out = sheet.transform_to_element(PAINTING)
        assert serialize(out) == "<article>Guitar</article>"

    def test_apply_recurses_into_children(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def painting(ctx, el):
            return build("div", {}, *ctx.apply(el))

        @sheet.template("title")
        def title(ctx, el):
            return build("h1", {}, el.text_content())

        @sheet.template("year")
        def year(ctx, el):
            return build("time", {}, el.text_content())

        @sheet.template("movement")
        def movement(ctx, el):
            return None  # suppress

        out = sheet.transform_to_element(PAINTING)
        assert serialize(out) == "<div><h1>Guitar</h1><time>1913</time></div>"

    def test_apply_with_select(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def painting(ctx, el):
            return build("div", {}, *ctx.apply(el, "title"))

        @sheet.template("title")
        def title(ctx, el):
            return el.text_content()

        out = sheet.transform_to_element(PAINTING)
        assert serialize(out) == "<div>Guitar</div>"

    def test_builtin_rule_copies_text_through(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def painting(ctx, el):
            return build("div", {}, *ctx.apply(el))

        # No rules for children: built-in recursion yields their text.
        out = sheet.transform_to_element(PAINTING)
        assert out.text_content() == "Guitar1913cubism"

    def test_string_results_become_text_nodes(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def painting(ctx, el):
            return "just text"

        (node,) = sheet.transform(PAINTING)
        assert node.value == "just text"


class TestRuleSelection:
    def test_path_pattern_beats_name_pattern(self):
        doc = parse("<a><b><title>inner</title></b><title>outer</title></a>")
        sheet = Stylesheet()

        @sheet.template("a")
        def a(ctx, el):
            return build("out", {}, *ctx.apply(el, "//title"))

        @sheet.template("title")
        def title(ctx, el):
            return build("plain", {})

        @sheet.template("b/title")
        def nested_title(ctx, el):
            return build("nested", {})

        out = sheet.transform_to_element(doc)
        kinds = [child.name.local for child in out.child_elements()]
        assert kinds == ["nested", "plain"]

    def test_wildcard_is_least_specific(self):
        doc = parse("<a><x/><title/></a>")
        sheet = Stylesheet()

        @sheet.template("a")
        def a(ctx, el):
            return build("out", {}, *ctx.apply(el))

        @sheet.template("*")
        def anything(ctx, el):
            return build("generic", {})

        @sheet.template("title")
        def title(ctx, el):
            return build("special", {})

        out = sheet.transform_to_element(doc)
        kinds = [child.name.local for child in out.child_elements()]
        assert kinds == ["generic", "special"]

    def test_later_registration_wins_ties(self):
        doc = parse("<title/>")
        sheet = Stylesheet()
        sheet.add_template("title", lambda ctx, el: build("first", {}))
        sheet.add_template("title", lambda ctx, el: build("second", {}))
        assert sheet.transform_to_element(doc).name.local == "second"


class TestParameters:
    def test_parameters_reach_rules(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def rule(ctx, el):
            return build("div", {"lang": str(ctx.parameters["lang"])})

        out = sheet.transform_to_element(PAINTING, parameters={"lang": "es"})
        assert out.get("lang") == "es"


class TestErrors:
    def test_empty_pattern_rejected(self):
        with pytest.raises(StylesheetError):
            Stylesheet().template("")

    def test_transform_to_element_needs_single_root(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def rule(ctx, el):
            return [build("a", {}), build("b", {})]

        with pytest.raises(StylesheetError):
            sheet.transform_to_element(PAINTING)

    def test_bad_rule_output_type_rejected(self):
        sheet = Stylesheet()

        @sheet.template("painting")
        def rule(ctx, el):
            return [42]

        with pytest.raises(StylesheetError):
            sheet.transform(PAINTING)
