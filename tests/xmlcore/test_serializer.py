"""Tests for serialization: escaping, namespaces, indentation, round-trips."""

import pytest

from repro.xmlcore import (
    CData,
    Comment,
    Element,
    ProcessingInstruction,
    QName,
    XLINK_NAMESPACE,
    XmlTreeError,
    build,
    escape_attribute,
    escape_text,
    parse,
    parse_element,
    serialize,
)


class TestEscaping:
    def test_text_escapes_markup_characters(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_attribute_escapes_whitespace_controls(self):
        assert escape_attribute("a\nb") == "a&#10;b"

    def test_serialized_text_reparses_to_same_value(self):
        el = Element("a")
        el.add_text("<tags> & \"quotes\" and ]]> trouble")
        reparsed = parse_element(serialize(el))
        assert reparsed.text_content() == "<tags> & \"quotes\" and ]]> trouble"


class TestBasicOutput:
    def test_empty_element_self_closes(self):
        assert serialize(Element("br")) == "<br/>"

    def test_element_with_text(self):
        assert serialize(build("t", {}, "hi")) == "<t>hi</t>"

    def test_attributes_in_insertion_order(self):
        el = Element("a", {"x": "1", "y": "2"})
        assert serialize(el) == '<a x="1" y="2"/>'

    def test_comment(self):
        el = build("a", {}, Comment("note"))
        assert serialize(el) == "<a><!--note--></a>"

    def test_comment_with_double_dash_rejected(self):
        el = build("a", {}, Comment("bad -- comment"))
        with pytest.raises(XmlTreeError):
            serialize(el)

    def test_cdata(self):
        el = build("a", {}, CData("<raw>"))
        assert serialize(el) == "<a><![CDATA[<raw>]]></a>"

    def test_cdata_containing_terminator_rejected(self):
        el = build("a", {}, CData("bad ]]> cdata"))
        with pytest.raises(XmlTreeError):
            serialize(el)

    def test_processing_instruction(self):
        el = build("a", {}, ProcessingInstruction("target", "data"))
        assert serialize(el) == "<a><?target data?></a>"

    def test_xml_declaration(self):
        doc = parse("<a/>")
        out = serialize(doc, xml_declaration=True)
        assert out.startswith('<?xml version="1.0" encoding="UTF-8"?>')


class TestNamespaceOutput:
    def test_parsed_prefix_reused(self):
        source = '<x:m xmlns:x="urn:x"><x:p/></x:m>'
        assert serialize(parse_element(source)) == source

    def test_default_namespace_reused(self):
        source = '<m xmlns="urn:x"><p/></m>'
        assert serialize(parse_element(source)) == source

    def test_synthesized_prefix_for_programmatic_namespace(self):
        el = Element(QName("urn:x", "m"))
        out = serialize(el)
        assert 'xmlns:ns0="urn:x"' in out and out.startswith("<ns0:m")

    def test_synthesized_output_reparses_to_same_name(self):
        el = Element(QName("urn:x", "m"))
        el.set(QName(XLINK_NAMESPACE, "href"), "doc.xml")
        reparsed = parse_element(serialize(el))
        assert reparsed.name == QName("urn:x", "m")
        assert reparsed.get(QName(XLINK_NAMESPACE, "href")) == "doc.xml"

    def test_attribute_never_uses_default_namespace(self):
        # An attribute in namespace urn:x must get a real prefix even when
        # urn:x is the default namespace.
        el = parse_element('<m xmlns="urn:x"/>')
        el.set(QName("urn:x", "a"), "v")
        reparsed = parse_element(serialize(el))
        assert reparsed.get(QName("urn:x", "a")) == "v"

    def test_unprefixed_no_namespace_child_inside_default_ns(self):
        outer = parse_element('<m xmlns="urn:x"/>')
        outer.append(Element("plain"))  # no namespace
        reparsed = parse_element(serialize(outer))
        assert reparsed.child_elements()[0].name == QName(None, "plain")

    def test_shadowing_round_trip(self):
        source = '<m xmlns:p="urn:one"><inner xmlns:p="urn:two"><p:x/></inner></m>'
        reparsed = parse_element(serialize(parse_element(source)))
        assert reparsed.find("x").name == QName("urn:two", "x")


class TestIndentation:
    def test_pretty_printing_nests(self):
        el = build("m", {}, build("p", {}, build("t", {}, "x")))
        out = serialize(el, indent="  ")
        assert out == "<m>\n  <p>\n    <t>x</t>\n  </p>\n</m>"

    def test_mixed_content_not_reindented(self):
        el = parse_element("<p>one <b>two</b> three</p>")
        assert serialize(el, indent="  ") == "<p>one <b>two</b> three</p>"

    def test_indented_output_reparses_equivalent(self):
        source = "<m><a><b>deep</b></a><c/></m>"
        el = parse_element(source)
        reparsed = parse_element(serialize(el, indent="  "))
        assert reparsed.find("b").text_content() == "deep"
        assert len(reparsed.child_elements()) == 2


class TestRoundTrips:
    @pytest.mark.parametrize(
        "source",
        [
            "<a/>",
            "<a>text</a>",
            '<a x="1"/>',
            "<a><b/><c><d/></c></a>",
            '<a xmlns="urn:d"><b/></a>',
            '<x:a xmlns:x="urn:p" x:attr="v"/>',
            "<a>&amp;&lt;&gt;</a>",
            "<a><!--c--><?pi d?></a>",
            '<links xmlns:xlink="http://www.w3.org/1999/xlink" '
            'xlink:type="extended"><loc xlink:type="locator" '
            'xlink:href="picasso.xml" xlink:label="painter"/></links>',
        ],
    )
    def test_parse_serialize_parse_is_stable(self, source):
        once = serialize(parse_element(source))
        twice = serialize(parse_element(once))
        assert once == twice
