"""Tests for the tree-construction helpers."""

from repro.xmlcore import (
    ElementMaker,
    QName,
    XLINK_NAMESPACE,
    build,
    comment,
    parse_element,
    pi,
    serialize,
    text,
)


class TestBuild:
    def test_nested_expression(self):
        tree = build(
            "painting",
            {"id": "guitar"},
            build("title", {}, "Guitar"),
            build("year", {}, "1913"),
        )
        assert tree.get("id") == "guitar"
        assert tree.find("title").text_content() == "Guitar"

    def test_string_children_become_text(self):
        tree = build("t", {}, "hello ", build("b", {}, "world"))
        assert tree.text_content() == "hello world"

    def test_namespaces_argument_declares(self):
        tree = build("m", {}, namespaces={None: "urn:x"})
        assert "urn:x" in serialize(tree)

    def test_helper_nodes(self):
        tree = build("a", {}, comment("c"), pi("t", "d"), text("x"))
        assert serialize(tree) == "<a><!--c--><?t d?>x</a>"


class TestElementMaker:
    def test_attribute_access_style(self):
        E = ElementMaker(namespace=XLINK_NAMESPACE, prefix="xlink")
        el = E.locator({"href": "picasso.xml"})
        assert el.name == QName(XLINK_NAMESPACE, "locator")

    def test_call_style(self):
        E = ElementMaker()
        el = E("painting", {"id": "x"}, "body")
        assert el.name == QName(None, "painting")
        assert el.text_content() == "body"

    def test_serialized_maker_output_reparses(self):
        E = ElementMaker(namespace="urn:m", prefix="m")
        el = E.museum({}, E.painting({"id": "g"}))
        reparsed = parse_element(serialize(el))
        assert reparsed.name == QName("urn:m", "museum")
        assert reparsed.child_elements()[0].name == QName("urn:m", "painting")

    def test_private_attribute_access_raises(self):
        E = ElementMaker()
        try:
            E._nope
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected AttributeError")
