"""Tests for the XML tokenizer."""

import pytest

from repro.xmlcore.errors import XmlSyntaxError
from repro.xmlcore.tokenizer import (
    CDataToken,
    CommentToken,
    DoctypeToken,
    EndTagToken,
    PIToken,
    StartTagToken,
    TextToken,
    XmlDeclToken,
    tokenize,
)


class TestBasicTokens:
    def test_single_element(self):
        start, end = tokenize("<a></a>")
        assert isinstance(start, StartTagToken) and start.name == "a"
        assert isinstance(end, EndTagToken) and end.name == "a"

    def test_self_closing_tag(self):
        (token,) = tokenize("<br/>")
        assert token.self_closing

    def test_self_closing_with_space(self):
        (token,) = tokenize("<br />")
        assert token.self_closing

    def test_text_between_tags(self):
        tokens = tokenize("<a>hello</a>")
        assert isinstance(tokens[1], TextToken)
        assert tokens[1].value == "hello"

    def test_attributes_preserved_in_order(self):
        (token,) = tokenize('<a x="1" y="2" z="3"/>')
        assert token.attributes == (("x", "1"), ("y", "2"), ("z", "3"))

    def test_single_quoted_attribute(self):
        (token,) = tokenize("<a x='1'/>")
        assert token.attributes == (("x", "1"),)

    def test_whitespace_around_equals(self):
        (token,) = tokenize('<a x = "1"/>')
        assert token.attributes == (("x", "1"),)

    def test_comment(self):
        (token,) = tokenize("<!-- a comment -->")
        assert isinstance(token, CommentToken)
        assert token.value == " a comment "

    def test_cdata_section(self):
        tokens = tokenize("<a><![CDATA[<raw> & markup]]></a>")
        assert isinstance(tokens[1], CDataToken)
        assert tokens[1].value == "<raw> & markup"

    def test_processing_instruction(self):
        (token,) = tokenize('<?xml-stylesheet href="s.xsl"?>')
        assert isinstance(token, PIToken)
        assert token.target == "xml-stylesheet"
        assert token.data == 'href="s.xsl"'

    def test_doctype_is_skipped_to_one_token(self):
        tokens = tokenize("<!DOCTYPE html><a/>")
        assert isinstance(tokens[0], DoctypeToken)
        assert tokens[0].name == "html"


class TestXmlDeclaration:
    def test_version_and_encoding(self):
        tokens = tokenize('<?xml version="1.0" encoding="UTF-8"?><a/>')
        decl = tokens[0]
        assert isinstance(decl, XmlDeclToken)
        assert decl.version == "1.0"
        assert decl.encoding == "UTF-8"

    def test_standalone_yes(self):
        tokens = tokenize('<?xml version="1.0" standalone="yes"?><a/>')
        assert tokens[0].standalone is True

    def test_unsupported_version_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokenize('<?xml version="2.0"?><a/>')

    def test_bad_standalone_value_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokenize('<?xml version="1.0" standalone="maybe"?><a/>')


class TestReferences:
    def test_predefined_entities_in_text(self):
        tokens = tokenize("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert tokens[1].value == "<&>\"'"

    def test_decimal_character_reference(self):
        tokens = tokenize("<a>&#65;</a>")
        assert tokens[1].value == "A"

    def test_hex_character_reference(self):
        tokens = tokenize("<a>&#x1F3A8;</a>")
        assert tokens[1].value == "\U0001f3a8"

    def test_entity_in_attribute_value(self):
        (token,) = tokenize('<a title="Tom &amp; Jerry"/>')
        assert token.attributes == (("title", "Tom & Jerry"),)

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokenize("<a>&nbsp;</a>")

    def test_malformed_character_reference_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokenize("<a>&#xZZ;</a>")

    def test_out_of_range_character_reference_rejected(self):
        with pytest.raises(XmlSyntaxError):
            tokenize("<a>&#x110000;</a>")


class TestAttributeNormalization:
    def test_newline_in_attribute_becomes_space(self):
        (token,) = tokenize('<a title="two\nlines"/>')
        assert token.attributes == (("title", "two lines"),)

    def test_tab_in_attribute_becomes_space(self):
        (token,) = tokenize('<a title="a\tb"/>')
        assert token.attributes == (("a".replace("a", "title"), "a b"),)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "<a",                       # unterminated start tag
            "<a x=1/>",                 # unquoted attribute
            '<a x="1/>',                # unterminated attribute value
            "<a><!-- comment</a>",      # unterminated comment
            "<!-- double -- dash -->",  # -- inside comment
            "<a><![CDATA[oops</a>",     # unterminated CDATA
            '<a x="<"/>',               # literal < in attribute
            "<a>]]></a>",               # ]]> in character data
            '<ax="1"/>',                # missing space before attribute
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(XmlSyntaxError):
            tokenize(source)

    def test_error_carries_position(self):
        with pytest.raises(XmlSyntaxError) as info:
            tokenize("<a>\n<b x=bad/></a>")
        assert info.value.line == 2


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("<a>\n  <b/>\n</a>")
        b = tokens[2]
        assert (b.line, b.column) == (2, 3)
