"""Tests for XML name handling and QName semantics."""

import pytest

from repro.xmlcore.names import (
    XLINK_NAMESPACE,
    XML_NAMESPACE,
    QName,
    is_valid_name,
    is_valid_ncname,
    qname,
    split_qname,
)


class TestNameValidity:
    def test_simple_ascii_name_is_valid(self):
        assert is_valid_name("painting")

    def test_name_may_contain_digits_after_first_char(self):
        assert is_valid_name("h1")

    def test_name_may_not_start_with_digit(self):
        assert not is_valid_name("1h")

    def test_name_may_start_with_underscore(self):
        assert is_valid_name("_private")

    def test_name_may_contain_hyphen_and_dot(self):
        assert is_valid_name("xml-stylesheet")
        assert is_valid_name("a.b")

    def test_name_may_not_start_with_hyphen(self):
        assert not is_valid_name("-bad")

    def test_empty_string_is_not_a_name(self):
        assert not is_valid_name("")

    def test_whitespace_is_not_allowed(self):
        assert not is_valid_name("two words")

    def test_non_ascii_letters_are_allowed(self):
        assert is_valid_name("museo-sevillaño")

    def test_colon_allowed_in_name_but_not_ncname(self):
        assert is_valid_name("xlink:href")
        assert not is_valid_ncname("xlink:href")


class TestSplitQName:
    def test_unprefixed_name(self):
        assert split_qname("painting") == (None, "painting")

    def test_prefixed_name(self):
        assert split_qname("xlink:href") == ("xlink", "href")

    def test_double_colon_rejected(self):
        with pytest.raises(ValueError):
            split_qname("a:b:c")

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            split_qname(":local")

    def test_empty_local_rejected(self):
        with pytest.raises(ValueError):
            split_qname("prefix:")


class TestQName:
    def test_equality_is_by_value(self):
        assert QName(XLINK_NAMESPACE, "href") == QName(XLINK_NAMESPACE, "href")

    def test_hashable_for_dict_keys(self):
        d = {QName(None, "id"): "guitar"}
        assert d[QName(None, "id")] == "guitar"

    def test_clark_notation_with_namespace(self):
        assert QName(XML_NAMESPACE, "id").clark() == "{%s}id" % XML_NAMESPACE

    def test_clark_notation_without_namespace(self):
        assert QName(None, "title").clark() == "title"

    def test_clark_round_trip(self):
        original = QName(XLINK_NAMESPACE, "arcrole")
        assert QName.from_clark(original.clark()) == original

    def test_from_clark_rejects_empty_uri(self):
        with pytest.raises(ValueError):
            QName.from_clark("{}local")

    def test_invalid_local_part_rejected(self):
        with pytest.raises(ValueError):
            QName(None, "not valid")

    def test_empty_namespace_string_rejected(self):
        with pytest.raises(ValueError):
            QName("", "local")

    def test_qname_helper_accepts_clark(self):
        assert qname("{%s}href" % XLINK_NAMESPACE) == QName(XLINK_NAMESPACE, "href")

    def test_qname_helper_accepts_local_plus_namespace(self):
        assert qname("href", XLINK_NAMESPACE) == QName(XLINK_NAMESPACE, "href")
