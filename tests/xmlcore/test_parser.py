"""Tests for the DOM parser: tree shape, namespaces, well-formedness."""

import pytest

from repro.xmlcore import (
    Comment,
    ProcessingInstruction,
    QName,
    Text,
    XLINK_NAMESPACE,
    XML_NAMESPACE,
    XmlNamespaceError,
    XmlWellFormednessError,
    parse,
    parse_element,
)


class TestTreeShape:
    def test_root_element_name(self):
        doc = parse("<museum/>")
        assert doc.root_element.name == QName(None, "museum")

    def test_nested_children_in_order(self):
        root = parse_element("<m><a/><b/><c/></m>")
        assert [el.name.local for el in root.child_elements()] == ["a", "b", "c"]

    def test_text_nodes_preserved(self):
        root = parse_element("<t>one<sep/>two</t>")
        kinds = [type(node).__name__ for node in root.children]
        assert kinds == ["Text", "Element", "Text"]

    def test_comment_inside_element(self):
        root = parse_element("<t><!--note--></t>")
        assert isinstance(root.children[0], Comment)
        assert root.children[0].value == "note"

    def test_pi_at_document_level(self):
        doc = parse('<?xml-stylesheet href="x"?><a/>')
        assert isinstance(doc.children[0], ProcessingInstruction)

    def test_cdata_contributes_to_text_content(self):
        root = parse_element("<t><![CDATA[a < b]]></t>")
        assert root.text_content() == "a < b"

    def test_deeply_nested_document(self):
        source = "<a>" * 200 + "x" + "</a>" * 200
        root = parse_element(source)
        depth = 0
        node = root
        while node.child_elements():
            node = node.child_elements()[0]
            depth += 1
        assert depth == 199

    def test_xml_declaration_sets_encoding(self):
        doc = parse('<?xml version="1.0" encoding="ISO-8859-1"?><a/>')
        assert doc.encoding == "ISO-8859-1"


class TestNamespaces:
    def test_default_namespace_applies_to_elements(self):
        root = parse_element('<m xmlns="urn:museum"><p/></m>')
        assert root.name == QName("urn:museum", "m")
        assert root.child_elements()[0].name == QName("urn:museum", "p")

    def test_default_namespace_does_not_apply_to_attributes(self):
        root = parse_element('<m xmlns="urn:museum" id="x"/>')
        assert root.get(QName(None, "id")) == "x"

    def test_prefixed_element(self):
        root = parse_element('<x:m xmlns:x="urn:museum"/>')
        assert root.name == QName("urn:museum", "m")
        assert root.prefix == "x"

    def test_prefixed_attribute(self):
        root = parse_element(
            '<a xmlns:xlink="%s" xlink:href="pic.xml"/>' % XLINK_NAMESPACE
        )
        assert root.get(QName(XLINK_NAMESPACE, "href")) == "pic.xml"

    def test_inner_declaration_shadows_outer(self):
        root = parse_element(
            '<m xmlns:p="urn:one"><inner xmlns:p="urn:two"><p:x/></inner></m>'
        )
        x = root.find("x")
        assert x.name == QName("urn:two", "x")

    def test_default_namespace_can_be_undeclared(self):
        root = parse_element('<m xmlns="urn:one"><inner xmlns=""><x/></inner></m>')
        assert root.find("x").name == QName(None, "x")

    def test_xml_prefix_is_implicit(self):
        root = parse_element('<a xml:lang="es"/>')
        assert root.get(QName(XML_NAMESPACE, "lang")) == "es"

    def test_undeclared_element_prefix_rejected(self):
        with pytest.raises(XmlNamespaceError):
            parse("<x:a/>")

    def test_undeclared_attribute_prefix_rejected(self):
        with pytest.raises(XmlNamespaceError):
            parse('<a x:attr="1"/>')

    def test_xmlns_prefix_cannot_be_declared(self):
        with pytest.raises(XmlNamespaceError):
            parse('<a xmlns:xmlns="urn:x"/>')

    def test_xml_prefix_must_bind_to_xml_namespace(self):
        with pytest.raises(XmlNamespaceError):
            parse('<a xmlns:xml="urn:wrong"/>')

    def test_prefix_undeclaration_rejected(self):
        with pytest.raises(XmlNamespaceError):
            parse('<a xmlns:p=""/>')

    def test_same_local_name_different_prefixes_not_duplicate(self):
        root = parse_element('<a xmlns:p="urn:one" xmlns:q="urn:two" p:x="1" q:x="2"/>')
        assert root.get(QName("urn:one", "x")) == "1"
        assert root.get(QName("urn:two", "x")) == "2"

    def test_same_expanded_name_via_two_prefixes_is_duplicate(self):
        with pytest.raises(XmlWellFormednessError):
            parse('<a xmlns:p="urn:one" xmlns:q="urn:one" p:x="1" q:x="2"/>')


class TestWellFormedness:
    @pytest.mark.parametrize(
        "source",
        [
            "<a><b></a></b>",      # mismatched nesting
            "<a>",                  # unclosed element
            "</a>",                 # end tag with no start
            "<a/><b/>",            # two root elements
            "<a/>text",            # text after root
            "text<a/>",            # text before root
            "",                     # empty document
            "   ",                  # whitespace-only document
            '<a x="1" x="2"/>',    # duplicate attribute
            "<a/><!DOCTYPE a>",    # DOCTYPE after root
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(XmlWellFormednessError):
            parse(source)

    def test_whitespace_around_root_is_fine(self):
        doc = parse("\n  <a/>\n")
        assert doc.root_element.name.local == "a"

    def test_comments_outside_root_are_fine(self):
        doc = parse("<!--before--><a/><!--after-->")
        assert doc.root_element.name.local == "a"

    def test_error_position_reported(self):
        with pytest.raises(XmlWellFormednessError) as info:
            parse("<a>\n\n</b>")
        assert info.value.line == 3
