"""Tests for DOM node behaviour and tree mutation rules."""

import pytest

from repro.xmlcore import (
    Comment,
    Document,
    Element,
    QName,
    Text,
    XML_NAMESPACE,
    XmlTreeError,
    deep_copy,
    iter_tree,
    parse,
    parse_element,
)


class TestMutation:
    def test_append_sets_parent(self):
        parent = Element("m")
        child = Element("p")
        parent.append(child)
        assert child.parent is parent

    def test_detach_clears_parent(self):
        parent = Element("m")
        child = parent.subelement("p")
        child.detach()
        assert child.parent is None
        assert parent.children == ()

    def test_insert_at_position(self):
        parent = Element("m")
        parent.subelement("a")
        parent.subelement("c")
        parent.insert(1, Element("b"))
        assert [el.name.local for el in parent.child_elements()] == ["a", "b", "c"]

    def test_reparenting_requires_detach(self):
        one, two = Element("one"), Element("two")
        child = one.subelement("c")
        with pytest.raises(XmlTreeError):
            two.append(child)

    def test_cycle_rejected(self):
        outer = Element("outer")
        inner = outer.subelement("inner")
        with pytest.raises(XmlTreeError):
            inner.append(outer)

    def test_self_append_rejected(self):
        el = Element("a")
        with pytest.raises(XmlTreeError):
            el.append(el)

    def test_document_cannot_be_a_child(self):
        with pytest.raises(XmlTreeError):
            Element("a").append(Document())

    def test_document_rejects_second_root(self):
        doc = Document()
        doc.append(Element("a"))
        with pytest.raises(XmlTreeError):
            doc.append(Element("b"))

    def test_document_rejects_meaningful_text(self):
        doc = Document()
        with pytest.raises(XmlTreeError):
            doc.append(Text("hello"))

    def test_document_accepts_whitespace_text(self):
        doc = Document()
        doc.append(Text("  \n"))
        doc.append(Element("a"))
        assert doc.root_element.name.local == "a"

    def test_remove_foreign_node_rejected(self):
        parent, stranger = Element("a"), Element("b")
        with pytest.raises(XmlTreeError):
            parent.remove(stranger)

    def test_clear_children(self):
        parent = Element("m")
        parent.subelement("a")
        parent.subelement("b")
        parent.clear_children()
        assert parent.children == ()


class TestAttributes:
    def test_set_and_get_by_local_name(self):
        el = Element("a")
        el.set("id", "guitar")
        assert el.get("id") == "guitar"

    def test_get_missing_returns_default(self):
        assert Element("a").get("nope", "dflt") == "dflt"

    def test_get_by_clark_notation(self):
        el = Element("a")
        el.set(QName("urn:x", "attr"), "v")
        assert el.get("{urn:x}attr") == "v"

    def test_local_name_lookup_finds_namespaced_attribute(self):
        el = Element("a")
        el.set(QName("urn:x", "href"), "v")
        assert el.get("href") == "v"

    def test_local_lookup_prefers_no_namespace(self):
        el = Element("a")
        el.set(QName("urn:x", "id"), "namespaced")
        el.set("id", "plain")
        assert el.get("id") == "plain"

    def test_delete_attribute(self):
        el = Element("a", {"id": "x"})
        el.delete("id")
        assert not el.has("id")

    def test_values_coerced_to_str(self):
        el = Element("a")
        el.set("n", 7)
        assert el.get("n") == "7"


class TestIds:
    def test_xml_id_wins_over_plain_id(self):
        el = parse_element('<a xml:id="canonical" id="plain"/>')
        assert el.get_id() == "canonical"

    def test_element_by_id_searches_subtree(self):
        doc = parse('<m><p id="guitar"/><p id="guernica"/></m>')
        assert doc.element_by_id("guernica").get("id") == "guernica"

    def test_element_by_id_missing_returns_none(self):
        doc = parse("<m/>")
        assert doc.element_by_id("nope") is None


class TestTraversal:
    def test_iter_filters_by_local_name(self):
        root = parse_element("<m><p/><q><p/></q></m>")
        assert len(root.findall("p")) == 2

    def test_iter_with_qname_is_exact(self):
        root = parse_element('<m xmlns:x="urn:x"><x:p/><p/></m>')
        assert len(root.findall(QName("urn:x", "p"))) == 1

    def test_ancestors_order(self):
        root = parse_element("<a><b><c/></b></a>")
        c = root.find("c")
        names = [el.name.local for el in c.ancestors() if isinstance(el, Element)]
        assert names == ["b", "a"]

    def test_ancestors_include_document(self):
        doc = parse("<a><b/></a>")
        b = doc.root_element.find("b")
        assert list(b.ancestors())[-1] is doc

    def test_document_property(self):
        doc = parse("<a><b/></a>")
        assert doc.root_element.find("b").document() is doc

    def test_detached_node_has_no_document(self):
        assert Element("a").document() is None

    def test_element_index_counts_elements_only(self):
        root = parse_element("<m>text<a/>more<b/></m>")
        assert root.find("a").element_index() == 1
        assert root.find("b").element_index() == 2

    def test_iter_tree_visits_everything(self):
        doc = parse("<a>t<b><!--c--></b></a>")
        kinds = [type(node).__name__ for node in iter_tree(doc)]
        assert kinds == ["Document", "Element", "Text", "Element", "Comment"]

    def test_text_content_skips_comments(self):
        root = parse_element("<a>one<!--no-->two</a>")
        assert root.text_content() == "onetwo"


class TestNamespaceScope:
    def test_prefix_resolution_walks_ancestors(self):
        root = parse_element('<m xmlns:x="urn:x"><inner/></m>')
        inner = root.find("inner")
        assert inner.namespace_for_prefix("x") == "urn:x"

    def test_shadowed_prefix_not_reported(self):
        root = parse_element('<m xmlns:x="urn:outer"><inner xmlns:x="urn:inner"/></m>')
        inner = root.find("inner")
        assert inner.namespace_for_prefix("x") == "urn:inner"
        assert inner.prefix_for_namespace("urn:outer") is None

    def test_xml_prefix_always_resolves(self):
        assert Element("a").namespace_for_prefix("xml") == XML_NAMESPACE


class TestDeepCopy:
    def test_copy_is_detached_and_equal_shaped(self):
        root = parse_element('<m id="1"><p id="2">text</p><!--c--></m>')
        clone = deep_copy(root)
        assert clone.parent is None
        assert clone.get("id") == "1"
        assert clone.find("p").text_content() == "text"

    def test_copy_is_independent(self):
        root = parse_element("<m><p/></m>")
        clone = deep_copy(root)
        clone.find("p").set("touched", "yes")
        assert not root.find("p").has("touched")

    def test_copy_preserves_namespace_declarations(self):
        root = parse_element('<m xmlns:x="urn:x"><x:p/></m>')
        clone = deep_copy(root)
        assert clone.namespaces.get("x") == "urn:x"

    def test_copy_document(self):
        doc = parse('<?xml version="1.0" encoding="latin-1"?><a/>')
        clone = deep_copy(doc)
        assert isinstance(clone, Document)
        assert clone.encoding == "latin-1"
