"""Property-based tests: the XML substrate round-trips arbitrary trees.

These are the load-bearing invariants: every document the linkbase writer
emits must reparse to the same infoset, for any text content, attribute
values, names and nesting the upper layers can produce.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlcore import (
    Element,
    QName,
    Text,
    deep_copy,
    parse_element,
    serialize,
)

# -- strategies -------------------------------------------------------------

name_start = st.sampled_from(string.ascii_letters + "_")
name_rest = st.text(string.ascii_letters + string.digits + "_-.", max_size=8)
ncnames = st.builds(lambda a, b: a + b, name_start, name_rest)

# Text free of control chars (XML 1.0 forbids most of C0) and surrogates.
xml_text = st.text(
    st.characters(
        min_codepoint=0x20,
        max_codepoint=0x2FFF,
        blacklist_characters="\x7f",
    ),
    max_size=40,
)

attr_values = xml_text
namespaces = st.one_of(st.none(), st.sampled_from(["urn:a", "urn:b", "http://x/ns"]))


@st.composite
def elements(draw, depth: int = 0) -> Element:
    name = QName(draw(namespaces), draw(ncnames))
    el = Element(name)
    for _ in range(draw(st.integers(0, 3))):
        el.set(QName(draw(namespaces), draw(ncnames)), draw(attr_values))
    if depth < 3:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                el.append(Text(draw(xml_text)))
            else:
                el.append(draw(elements(depth=depth + 1)))
    return el


def infoset(el: Element):
    """A comparable shape: (name, attrs, merged-text-children, child infosets)."""
    children = []
    pending_text: list[str] = []
    for node in el.children:
        if isinstance(node, Element):
            if pending_text:
                children.append("".join(pending_text))
                pending_text = []
            children.append(infoset(node))
        elif isinstance(node, Text):
            pending_text.append(node.value)
    if pending_text:
        children.append("".join(pending_text))
    # Adjacent text nodes merge on reparse; empty text disappears.
    children = [c for c in children if c != ""]
    return (
        el.name.clark(),
        tuple(sorted((k.clark(), v) for k, v in el.attributes.items())),
        tuple(children),
    )


# -- properties -------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(elements())
def test_serialize_parse_preserves_infoset(el):
    reparsed = parse_element(serialize(el))
    assert infoset(reparsed) == infoset(el)


@settings(max_examples=100, deadline=None)
@given(elements())
def test_serialization_is_idempotent_after_one_round(el):
    once = serialize(parse_element(serialize(el)))
    twice = serialize(parse_element(once))
    assert once == twice


@settings(max_examples=100, deadline=None)
@given(elements())
def test_pretty_printing_preserves_text_free_infoset(el):
    # Indentation only adds/removes whitespace-only text in element-only
    # content, so the infoset modulo whitespace-only text is preserved.
    # (Exact preservation of significant whitespace is covered by the
    # non-pretty round-trip property above.)
    def strip_ws(shape):
        name, attrs, children = shape
        kept = tuple(
            strip_ws(c) if isinstance(c, tuple) else c
            for c in children
            if isinstance(c, tuple) or c.strip()
        )
        return (name, attrs, kept)

    reparsed = parse_element(serialize(el, indent="  "))
    assert strip_ws(infoset(reparsed)) == strip_ws(infoset(el))


@settings(max_examples=100, deadline=None)
@given(elements())
def test_deep_copy_serializes_identically(el):
    assert serialize(deep_copy(el)) == serialize(el)


@settings(max_examples=100, deadline=None)
@given(xml_text)
def test_text_round_trip(value):
    el = Element("t")
    el.add_text(value)
    assert parse_element(serialize(el)).text_content() == value


@settings(max_examples=100, deadline=None)
@given(attr_values)
def test_attribute_round_trip(value):
    # Attribute-value normalization folds tab/newline to space on reparse,
    # and our serializer escapes them precisely to avoid that; values must
    # survive verbatim.
    el = Element("t")
    el.set("v", value)
    assert parse_element(serialize(el)).get("v") == value
