"""Tests for the path query language."""

import pytest

from repro.xmlcore import parse, parse_element, query, query_one
from repro.xmlcore.path import XmlPathError, parse_path

MUSEUM = """
<museum>
  <painter id="picasso">
    <name>Pablo Picasso</name>
    <painting id="guitar"><title>Guitar</title><year>1913</year></painting>
    <painting id="guernica"><title>Guernica</title><year>1937</year></painting>
  </painter>
  <painter id="dali">
    <name>Salvador Dali</name>
    <painting id="memory"><title>The Persistence of Memory</title><year>1931</year></painting>
  </painter>
</museum>
"""


@pytest.fixture()
def museum():
    return parse_element(MUSEUM)


class TestChildSteps:
    def test_single_child_step(self, museum):
        assert len(query(museum, "painter")) == 2

    def test_nested_steps(self, museum):
        titles = query(museum, "painter/painting/title/text()")
        assert titles == ["Guitar", "Guernica", "The Persistence of Memory"]

    def test_star_matches_any_child(self, museum):
        assert len(query(museum, "painter/*")) == 5

    def test_no_match_returns_empty(self, museum):
        assert query(museum, "sculpture") == []


class TestDescendantSteps:
    def test_leading_descendant_axis(self, museum):
        assert len(query(museum, "//painting")) == 3

    def test_descendant_in_the_middle(self, museum):
        years = query(museum, "painter[@id='picasso']//year/text()")
        assert years == ["1913", "1937"]

    def test_descendant_results_deduplicated(self, museum):
        # Both painter steps can reach the same painting elements only once.
        assert len(query(museum, "//painter//painting")) == 3


class TestPredicates:
    def test_positional_predicate_is_one_based(self, museum):
        second = query_one(museum, "painter[2]")
        assert second.get("id") == "dali"

    def test_position_out_of_range(self, museum):
        assert query(museum, "painter[9]") == []

    def test_attribute_predicate(self, museum):
        el = query_one(museum, "//painting[@id='guernica']")
        assert el.find("title").text_content() == "Guernica"

    def test_attribute_predicate_double_quotes(self, museum):
        el = query_one(museum, '//painting[@id="memory"]')
        assert el is not None

    def test_predicate_applies_per_context_node(self, museum):
        # painting[1] means "first painting of each painter", so two results.
        firsts = query(museum, "painter/painting[1]/@id")
        assert firsts == ["guitar", "memory"]


class TestTerminalSteps:
    def test_attribute_step_returns_strings(self, museum):
        assert query(museum, "painter/@id") == ["picasso", "dali"]

    def test_attribute_step_skips_missing(self, museum):
        assert query(museum, "painter/name/@id") == []

    def test_text_step(self, museum):
        assert query(museum, "painter[1]/name/text()") == ["Pablo Picasso"]

    def test_dot_step_is_identity(self, museum):
        assert query(museum, "./painter/@id") == ["picasso", "dali"]


class TestFromDocument:
    def test_query_from_document_node(self):
        doc = parse("<m><a/></m>")
        assert len(query(doc, "m/a")) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "expression",
        ["", "   ", "/abs", "@id/title", "text()/more", "a//"],
    )
    def test_invalid_expressions_rejected(self, expression, museum):
        with pytest.raises(XmlPathError):
            query(museum, expression)

    def test_parse_path_exposes_steps(self):
        steps = parse_path("//painting[@id='x']/title")
        assert steps[0].axis == "descendant"
        assert steps[0].attr_name == "id"
        assert steps[1].test == "title"


class TestClarkNameTests:
    def test_exact_expanded_name_match(self):
        root = parse_element('<m xmlns:x="urn:x"><x:p/><p/></m>')
        assert len(query(root, "{urn:x}p")) == 1
        assert len(query(root, "p")) == 2
