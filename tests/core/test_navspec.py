"""Tests for the navigation specification."""

import pytest

from repro.baselines import museum_fixture
from repro.core import AccessChoice, NavigationSpec, default_museum_spec


@pytest.fixture()
def fixture():
    return museum_fixture()


class TestAccessChoice:
    def test_builds_each_kind(self):
        assert AccessChoice("index").build("x").kind == "Index"
        assert AccessChoice("guided-tour").build("x").kind == "GuidedTour"
        assert (
            AccessChoice("indexed-guided-tour").build("x").kind == "IndexedGuidedTour"
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AccessChoice("teleport")

    def test_options_forwarded(self):
        structure = AccessChoice("guided-tour", circular=True).build("x")
        assert structure.circular


class TestSpecContexts:
    def test_only_selected_families_materialize(self, fixture):
        spec = NavigationSpec().set_access("by-painter", "index")
        contexts = spec.build_contexts(fixture)
        assert all(name.startswith("by-painter:") for name in contexts)

    def test_spec_overrides_schema_access_structure(self, fixture):
        # The fixture's schema says "index"; the spec says otherwise and wins.
        spec = NavigationSpec().set_access("by-painter", "indexed-guided-tour")
        contexts = spec.build_contexts(fixture)
        assert (
            contexts["by-painter:picasso"].access_structure.kind
            == "IndexedGuidedTour"
        )

    def test_multiple_families(self, fixture):
        spec = (
            NavigationSpec()
            .set_access("by-painter", "index")
            .set_access("by-movement", "guided-tour")
        )
        contexts = spec.build_contexts(fixture)
        assert "by-painter:picasso" in contexts
        assert "by-movement:cubism" in contexts


class TestAnchors:
    def test_context_anchors_for_member(self, fixture):
        spec = default_museum_spec("index")
        contexts = spec.build_contexts(fixture)
        guitar = fixture.painting_node("guitar")
        anchors = spec.anchors_for(guitar, contexts, fixture.nav)
        rels = [a.rel for a in anchors]
        assert rels.count("entry") == 2  # sibling index without self
        assert rels.count("link") == 1   # painted_by

    def test_igt_adds_prev_next(self, fixture):
        spec = default_museum_spec("indexed-guided-tour")
        contexts = spec.build_contexts(fixture)
        guitar = fixture.painting_node("guitar")
        rels = {a.rel for a in spec.anchors_for(guitar, contexts, fixture.nav)}
        assert {"prev", "next"} <= rels

    def test_non_member_gets_only_links(self, fixture):
        spec = default_museum_spec("index")
        contexts = spec.build_contexts(fixture)
        picasso = fixture.painter_node("picasso")
        anchors = spec.anchors_for(picasso, contexts, fixture.nav)
        assert all(a.rel == "link" for a in anchors)
        assert len(anchors) == 3  # his paintings

    def test_home_anchors(self, fixture):
        spec = default_museum_spec("index")
        labels = [a.label for a in spec.home_anchors(fixture)]
        assert labels == [
            "Pablo Picasso",
            "Georges Braque",
            "Salvador Dali",
            "Joan Miro",
        ]

    def test_anchors_deduplicated(self, fixture):
        spec = default_museum_spec("index")
        spec.expose("PaintingNode", "painted_by")  # exposed twice now
        contexts = spec.build_contexts(fixture)
        guitar = fixture.painting_node("guitar")
        anchors = spec.anchors_for(guitar, contexts, fixture.nav)
        links = [a for a in anchors if a.rel == "link"]
        assert len(links) == 1


class TestSpecAsArtifact:
    def test_to_text_is_stable(self, fixture):
        text = default_museum_spec("index").to_text()
        assert text == default_museum_spec("index").to_text()

    def test_change_request_is_one_line(self):
        before = default_museum_spec("index").to_text().splitlines()
        after = default_museum_spec("indexed-guided-tour").to_text().splitlines()
        assert len(before) == len(after)
        changed = [(b, a) for b, a in zip(before, after) if b != a]
        assert len(changed) == 1
        assert "index" in changed[0][0] and "indexed-guided-tour" in changed[0][1]

    def test_text_mentions_every_decision(self):
        text = default_museum_spec("index").to_text()
        assert "access by-painter = index" in text
        assert "expose PaintingNode -> painted_by" in text
        assert "home-index PainterNode" in text
