"""Tests for the landmark aspect: two navigation aspects, composed."""

import pytest

from repro.aop import Weaver
from repro.baselines import museum_fixture
from repro.core import (
    LandmarkAspect,
    LandmarkSpec,
    NavigationAspect,
    PageRenderer,
    build_plain_site,
    default_museum_landmarks,
    default_museum_spec,
)


@pytest.fixture()
def fixture():
    return museum_fixture()


def build_with(fixture, *aspects):
    weaver = Weaver()
    for aspect in aspects:
        weaver.deploy(aspect, [PageRenderer])
    try:
        return PageRenderer(fixture).build_site()
    finally:
        weaver.undeploy_all()


class TestLandmarkSpec:
    def test_text_round_trip(self):
        spec = LandmarkSpec().add("Home", "index.html").add("Map", "map.html")
        assert LandmarkSpec.from_text(spec.to_text()).to_text() == spec.to_text()

    def test_malformed_text_rejected(self):
        with pytest.raises(ValueError):
            LandmarkSpec.from_text("landmark Home -> index.html")
        with pytest.raises(ValueError):
            LandmarkSpec.from_text("[landmarks]\nhome index.html")


class TestLandmarkAspectAlone:
    def test_every_page_gets_the_landmark(self, fixture):
        site = build_with(fixture, LandmarkAspect(default_museum_landmarks()))
        for page in site.pages():
            if page.path == "index.html":
                continue  # the landmark points here; self-link suppressed
            labels = [a.label for a in page.anchors()]
            assert labels == ["Museum home"], page.path

    def test_self_link_suppressed_on_target(self, fixture):
        site = build_with(fixture, LandmarkAspect(default_museum_landmarks()))
        assert site.page("index.html").anchors() == []

    def test_landmark_hrefs_are_relative(self, fixture):
        site = build_with(fixture, LandmarkAspect(default_museum_landmarks()))
        (anchor,) = site.page("PaintingNode/guitar.html").anchors()
        assert anchor.href == "../index.html"
        assert site.check_links() == []


class TestComposition:
    def test_both_aspects_contribute(self, fixture):
        site = build_with(
            fixture,
            NavigationAspect(default_museum_spec("index"), fixture),
            LandmarkAspect(default_museum_landmarks()),
        )
        rels = {a.rel for a in site.page("PaintingNode/guitar.html").anchors()}
        assert {"entry", "link", "landmark"} <= rels

    def test_deploy_order_does_not_lose_anchors(self, fixture):
        one = build_with(
            fixture,
            NavigationAspect(default_museum_spec("index"), fixture),
            LandmarkAspect(default_museum_landmarks()),
        )
        other = build_with(
            fixture,
            LandmarkAspect(default_museum_landmarks()),
            NavigationAspect(default_museum_spec("index"), fixture),
        )
        page_one = {
            (a.label, a.rel) for a in one.page("PaintingNode/guitar.html").anchors()
        }
        page_other = {
            (a.label, a.rel) for a in other.page("PaintingNode/guitar.html").anchors()
        }
        assert page_one == page_other

    def test_each_aspect_separately_removable(self, fixture):
        landmarks_only = build_with(fixture, LandmarkAspect(default_museum_landmarks()))
        rels = {
            a.rel for a in landmarks_only.page("PaintingNode/guitar.html").anchors()
        }
        assert rels == {"landmark"}
        plain = build_plain_site(fixture)
        assert sum(len(p.anchors()) for p in plain.pages()) == 0

    def test_landmark_rail_is_marked(self, fixture):
        site = build_with(fixture, LandmarkAspect(default_museum_landmarks()))
        page = site.page("PaintingNode/guitar.html")
        (nav,) = page.tree.findall("nav")
        assert nav.get("class") == "landmarks"

    def test_decoration_counter(self, fixture):
        aspect = LandmarkAspect(default_museum_landmarks())
        build_with(fixture, aspect)
        assert aspect.pages_decorated == 13  # all but the self-linked home
