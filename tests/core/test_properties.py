"""Property-based tests for the core layer: the spec artifact round-trips."""

import string

from hypothesis import given, settings, strategies as st

from repro.core import ACCESS_KINDS, AccessChoice, NavigationSpec

names = st.text(string.ascii_lowercase + "-", min_size=1, max_size=12).filter(
    lambda s: s.strip("-") == s and s
)


@st.composite
def specs(draw) -> NavigationSpec:
    spec = NavigationSpec()
    for family in draw(st.lists(names, max_size=3, unique=True)):
        spec.access[family] = AccessChoice(
            kind=draw(st.sampled_from(ACCESS_KINDS)),
            label_attribute=draw(st.one_of(st.none(), st.just("title"))),
            circular=draw(st.booleans()),
        )
    for node_class in draw(st.lists(names, max_size=2, unique=True)):
        for link_class in draw(st.lists(names, min_size=1, max_size=2, unique=True)):
            spec.expose(node_class, link_class)
    for home in draw(st.lists(names, max_size=2, unique=True)):
        spec.index_on_home(home)
    return spec


@settings(max_examples=200, deadline=None)
@given(specs())
def test_spec_text_round_trip(spec):
    """from_text(to_text(spec)) reproduces the spec exactly."""
    reparsed = NavigationSpec.from_text(spec.to_text())
    assert reparsed.to_text() == spec.to_text()
    # Structural equality, not just textual:
    assert {f: c.kind for f, c in reparsed.access.items()} == {
        f: c.kind for f, c in spec.access.items()
    }
    assert reparsed.expose_links == spec.expose_links
    assert sorted(reparsed.home_indexes) == sorted(spec.home_indexes)


@settings(max_examples=200, deadline=None)
@given(specs())
def test_to_text_is_deterministic(spec):
    assert spec.to_text() == spec.to_text()


@settings(max_examples=100, deadline=None)
@given(specs(), st.sampled_from(ACCESS_KINDS), st.sampled_from(ACCESS_KINDS))
def test_access_change_is_localized_in_the_artifact(spec, kind_a, kind_b):
    """Changing one family's access never touches other lines of the spec."""
    spec.set_access("target-family", kind_a)
    before = spec.to_text().splitlines()
    spec.set_access("target-family", kind_b)
    after = spec.to_text().splitlines()
    assert len(before) == len(after)
    differing = [i for i, (b, a) in enumerate(zip(before, after)) if b != a]
    if kind_a == kind_b:
        assert differing == []
    else:
        assert len(differing) == 1
        assert "target-family" in before[differing[0]]
