"""Tests for the XML navigation artifact with embedded pointcuts (§7)."""

import pytest

from repro.aop import PointcutSyntaxError
from repro.core import (
    AccessChoice,
    NavigationSpec,
    PageRenderer,
    default_museum_spec,
    spec_from_xml,
    spec_to_xml,
)
from repro.xmlcore import serialize


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ["index", "guided-tour", "indexed-guided-tour"])
    def test_default_specs_round_trip(self, kind):
        spec = default_museum_spec(kind)
        reparsed, __, __ = spec_from_xml(serialize(spec_to_xml(spec)))
        assert reparsed.to_text() == spec.to_text()

    def test_options_preserved(self):
        spec = NavigationSpec()
        spec.access["by-x"] = AccessChoice(
            "guided-tour", label_attribute=None, circular=True, embed_entries=False
        )
        spec.access["by-y"] = AccessChoice("index", embed_entries=True)
        reparsed, __, __ = spec_from_xml(serialize(spec_to_xml(spec)))
        assert reparsed.access["by-x"].circular
        assert reparsed.access["by-x"].label_attribute is None
        assert reparsed.access["by-y"].embed_entries

    def test_custom_pointcuts_travel(self):
        spec = default_museum_spec("index")
        doc = spec_to_xml(spec, node_pointcut="execution(*.render_node)")
        __, node_pc, home_pc = spec_from_xml(serialize(doc))
        assert node_pc == "execution(*.render_node)"
        assert "render_home" in home_pc


class TestValidation:
    def test_pointcuts_checked_against_renderer(self):
        spec = default_museum_spec("index")
        doc = spec_to_xml(spec, node_pointcut="execution(Ghost.render)")
        with pytest.raises(ValueError) as info:
            spec_from_xml(serialize(doc), validate_against=PageRenderer)
        assert "matches no join point" in str(info.value)

    def test_malformed_pointcut_rejected(self):
        spec = default_museum_spec("index")
        doc = spec_to_xml(spec, node_pointcut="execution(unclosed")
        with pytest.raises(PointcutSyntaxError):
            spec_from_xml(serialize(doc))

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError):
            spec_from_xml("<not-navigation/>")

    def test_missing_attributes_rejected(self):
        text = (
            '<navigation xmlns="urn:repro:navigation">'
            '<access family="by-x"/></navigation>'
        )
        with pytest.raises(ValueError):
            spec_from_xml(text)

    def test_unknown_element_rejected(self):
        text = (
            '<navigation xmlns="urn:repro:navigation">'
            "<teleporter/></navigation>"
        )
        with pytest.raises(ValueError):
            spec_from_xml(text)


class TestArtifactUse:
    def test_loaded_spec_builds_the_site(self):
        from repro.baselines import museum_fixture
        from repro.core import build_woven_site

        xml_text = serialize(spec_to_xml(default_museum_spec("indexed-guided-tour")))
        spec, __, __ = spec_from_xml(xml_text, validate_against=PageRenderer)
        site = build_woven_site(museum_fixture(), spec)
        rels = {a.rel for a in site.page("PaintingNode/guitar.html").anchors()}
        assert "next" in rels
