"""Tests for the separation policy (declare error in the paper's service)."""

import pytest

from repro.aop import WeavingError
from repro.core import PageRenderer, SeparationPolicy, check_separation


class TestSeparationPolicy:
    def test_the_base_program_is_clean(self):
        check_separation(PageRenderer)  # must not raise

    def test_tangled_class_rejected(self):
        class SneakyRenderer:
            def render_page(self):
                pass

            def add_link_to_page(self, href):  # navigation creeping back in
                pass

        with pytest.raises(WeavingError) as info:
            check_separation(SneakyRenderer)
        assert "add_link_to_page" in str(info.value)
        assert "navigation aspect" in str(info.value)

    def test_extra_shapes_extend_the_policy(self):
        class Renderer:
            def emit_breadcrumbs(self):
                pass

        check_separation(Renderer)  # default policy tolerates it
        with pytest.raises(WeavingError):
            check_separation(Renderer, extra_shapes=("execution(*.emit_breadcrumb*)",))

    def test_policy_leaves_no_trace(self):
        before = dict(PageRenderer.__dict__)
        check_separation(PageRenderer)
        assert dict(PageRenderer.__dict__).keys() == before.keys()

    def test_policy_aspect_validates_without_advice(self):
        SeparationPolicy().validate()
