"""Tests for the repro.tools command-line interface."""

from pathlib import Path

import pytest

from repro.core import NavigationSpec, default_museum_spec
from repro.tools import main


class TestSpecCommand:
    def test_prints_artifact(self, capsys):
        assert main(["spec", "--access", "index"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[navigation]")
        assert "access by-painter = index label=title" in out

    def test_round_trips_through_from_text(self, capsys):
        main(["spec", "--access", "indexed-guided-tour"])
        out = capsys.readouterr().out
        spec = NavigationSpec.from_text(out)
        assert spec.to_text() == default_museum_spec("indexed-guided-tour").to_text()


class TestBuildCommand:
    @pytest.mark.parametrize("mechanism", ["tangled", "aspect", "xlink"])
    def test_writes_site(self, tmp_path, capsys, mechanism):
        out = tmp_path / mechanism
        assert main(["build", "--mechanism", mechanism, "--out", str(out)]) == 0
        assert (out / "index.html").exists()
        assert "wrote 14 pages" in capsys.readouterr().out

    def test_spec_file_input(self, tmp_path, capsys):
        spec_file = tmp_path / "navigation.spec"
        spec_file.write_text(default_museum_spec("indexed-guided-tour").to_text())
        out = tmp_path / "site"
        main(["build", "--mechanism", "aspect", "--spec-file", str(spec_file),
              "--out", str(out)])
        guitar = (out / "PaintingNode" / "guitar.html").read_text()
        assert 'rel="next"' in guitar

    def test_synthetic_size_flags(self, tmp_path, capsys):
        out = tmp_path / "big"
        main(["--painters", "2", "--paintings", "3", "build",
              "--mechanism", "aspect", "--out", str(out)])
        assert "wrote 9 pages" in capsys.readouterr().out  # 1 + 2 + 6

    def test_tangled_rejects_guided_tour(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", "--mechanism", "tangled", "--access", "guided-tour",
                  "--out", str(tmp_path / "x")])


class TestDiffCommand:
    def test_all_mechanisms_table(self, capsys):
        assert main(["diff"]) == 0
        out = capsys.readouterr().out
        assert "tangled" in out and "xlink" in out and "aspect" in out

    def test_single_mechanism(self, capsys):
        main(["diff", "--mechanism", "aspect"])
        out = capsys.readouterr().out
        assert "aspect" in out and "tangled" not in out

    def test_unknown_mechanism(self):
        with pytest.raises(SystemExit):
            main(["diff", "--mechanism", "quantum"])


class TestArtifactsCommand:
    def test_writes_figures_7_to_9(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["artifacts", "--out", str(out)]) == 0
        assert (out / "picasso.xml").exists()
        assert (out / "avignon.xml").exists()
        links = (out / "links.xml").read_text()
        assert 'xlink:type="extended"' in links

    def test_written_artifacts_reparse(self, tmp_path):
        from repro.xmlcore import parse_file

        out = tmp_path / "artifacts"
        main(["artifacts", "--access", "indexed-guided-tour", "--out", str(out)])
        document = parse_file(str(out / "links.xml"))
        assert document.root_element.name.local == "links"


class TestAopInspectCommand:
    def test_reports_woven_sites_and_tiers(self, capsys):
        from repro.core import PageRenderer

        assert main(["aop", "inspect", "--stack", "index,guided-tour"]) == 0
        out = capsys.readouterr().out
        assert "PageRenderer.render_node" in out
        assert "PageRenderer.render_home" in out
        assert "NavigationAspect" in out
        assert "codegen cache:" in out
        assert "2 deployments" in out
        # The inspection transaction unwound completely.
        assert not hasattr(PageRenderer.render_node, "__woven__")

    def test_dumps_generated_source(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_AOP_CODEGEN", "1")
        assert main(["aop", "inspect", "--source", "PageRenderer.render_node"]) == 0
        out = capsys.readouterr().out
        assert "generated source for PageRenderer.render_node" in out
        assert "def wrapper(self, *args, **kwargs):" in out

    def test_unknown_source_site_fails(self):
        with pytest.raises(SystemExit, match="no generated wrapper"):
            main(["aop", "inspect", "--source", "PageRenderer.nope"])

    def test_empty_stack_fails(self):
        with pytest.raises(SystemExit, match="names no access structures"):
            main(["aop", "inspect", "--stack", " , "])


class TestAopLintCommand:
    EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

    def test_shipped_examples_have_zero_findings(self, capsys):
        from repro.core import PageRenderer

        assert main(["aop", "lint", str(self.EXAMPLES)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "codegen template shapes verified" in out
        assert "file(s) scanned" in out
        # The analyzer never deploys.
        assert not hasattr(PageRenderer.render_node, "__woven__")

    def test_explicit_stack_mode(self, capsys):
        assert main(["aop", "lint", "--stack", "index,guided-tour"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "index+guided-tour" in out

    def test_default_lints_every_stock_structure(self, capsys):
        assert main(["aop", "lint", "--no-codegen"]) == 0
        out = capsys.readouterr().out
        assert "0 codegen template shapes" in out
        assert "indexed-guided-tour" in out

    def test_unknown_access_structure_fails(self):
        with pytest.raises(SystemExit, match="unknown access structure"):
            main(["aop", "lint", "--stack", "index,no-such-structure"])

    def test_nonexistent_path_fails(self):
        with pytest.raises(SystemExit, match="neither a directory"):
            main(["aop", "lint", "no/such/path.txt"])


class TestServeCommand:
    def test_parser_defaults(self):
        from repro.tools.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.fn.__name__ == "cmd_serve"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.audiences == "visitor,curator"
        assert args.session_ttl == 600.0

    def test_unknown_audience_fails(self):
        with pytest.raises(SystemExit, match="unknown audience"):
            main(["serve", "--port", "0", "--audiences", "visitor,stranger"])

    def test_serves_requests_end_to_end(self, capsys):
        """Boot the real CLI stack on an ephemeral port and request a page."""
        import threading
        import unittest.mock
        import urllib.request

        import repro.navigation as nav_mod
        from repro.core import PageRenderer

        real_serve = nav_mod.serve
        came_up = threading.Event()
        bound = {}

        def capturing_serve(fixture, bundles=None, *, ready=None, **kwargs):
            # Wrap the CLI's ready hook to also capture the bound server,
            # so the test can learn the ephemeral port and shut it down.
            def ready_hook(httpd):
                if ready is not None:
                    ready(httpd)
                bound["httpd"] = httpd
                came_up.set()

            return real_serve(fixture, bundles, ready=ready_hook, **kwargs)

        def run():
            # cmd_serve does `from repro.navigation import serve`, so the
            # patch intercepts the CLI's real call path.
            with unittest.mock.patch.object(nav_mod, "serve", capturing_serve):
                main(["serve", "--port", "0"])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert came_up.wait(10), "server never came up"
        port = bound["httpd"].server_address[1]
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/visitor/index.html"
            ) as response:
                assert response.status == 200
                assert "The Museum" in response.read().decode("utf-8")
        finally:
            bound["httpd"].shutdown()
            thread.join(10)
        assert not hasattr(PageRenderer.render_node, "__woven__")
