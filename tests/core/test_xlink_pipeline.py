"""Tests for the XLink export/import pipeline (Figures 7–9)."""

import pytest

from repro.baselines import museum_fixture
from repro.core import (
    NAV_ENTRY_ARCROLE,
    NAV_NEXT_ARCROLE,
    build_woven_site,
    build_xlink_site,
    default_museum_spec,
    export_data_documents,
    export_linkbase,
    export_museum_space,
    linkbase_text,
)
from repro.navigation import UserAgent
from repro.xlink import Linkbase, Severity, find_links
from repro.xmlcore import serialize


@pytest.fixture()
def fixture():
    return museum_fixture()


class TestDataDocuments:
    def test_one_document_per_entity(self, fixture):
        documents = export_data_documents(fixture)
        assert "picasso.xml" in documents and "avignon.xml" in documents
        assert len(documents) == 13

    def test_figure_7_shape_painter_document(self, fixture):
        """picasso.xml: painter data, no links (Figure 7)."""
        doc = export_data_documents(fixture)["picasso.xml"]
        root = doc.root_element
        assert root.name.local == "painter"
        assert root.get("id") == "picasso"
        assert root.find("name").text_content() == "Pablo Picasso"
        assert find_links(doc) == []

    def test_figure_8_shape_painting_document(self, fixture):
        """avignon.xml: painting data, no links (Figure 8)."""
        root = export_data_documents(fixture)["avignon.xml"].root_element
        assert root.name.local == "painting"
        assert root.find("title").text_content() == "Les Demoiselles d'Avignon"
        assert root.find("year").text_content() == "1907"
        assert find_links(root) == []

    def test_data_documents_independent_of_access_structure(self, fixture):
        """The separation promise: the change request leaves data untouched."""
        before = {
            uri: serialize(doc)
            for uri, doc in export_data_documents(fixture).items()
        }
        after = {
            uri: serialize(doc)
            for uri, doc in export_data_documents(fixture).items()
        }
        assert before == after


class TestLinkbase:
    def test_figure_9_links_live_apart_from_data(self, fixture):
        linkbase_doc = export_linkbase(fixture, default_museum_spec("index"))
        links = find_links(linkbase_doc)
        assert links, "linkbase must contain extended links"
        # Every link in the linkbase is extended (out-of-line), never simple.
        assert all(type(l).__name__ == "ExtendedLink" for l in links)

    def test_linkbase_validates_cleanly(self, fixture):
        for kind in ("index", "guided-tour", "indexed-guided-tour"):
            doc = export_linkbase(fixture, default_museum_spec(kind))
            lb = Linkbase.from_document("links.xml", doc)
            errors = [i for i in lb.validate() if i.severity is Severity.ERROR]
            assert errors == [], kind

    def test_index_encoded_as_open_arc(self, fixture):
        doc = export_linkbase(fixture, default_museum_spec("index"))
        lb = Linkbase.from_document("links.xml", doc)
        context_links = [
            l for l in lb.extended_links() if l.role == "urn:repro:nav:context"
        ]
        assert context_links
        for link in context_links:
            (arc,) = link.arcs
            assert arc.from_label is None and arc.to_label is None
            assert arc.arcrole == NAV_ENTRY_ARCROLE

    def test_guided_tour_encoded_as_adjacent_arcs(self, fixture):
        doc = export_linkbase(fixture, default_museum_spec("guided-tour"))
        lb = Linkbase.from_document("links.xml", doc)
        picasso = next(
            l for l in lb.extended_links() if l.title == "by-painter:picasso"
        )
        next_arcs = [a for a in picasso.arcs if a.arcrole == NAV_NEXT_ARCROLE]
        # 3 paintings -> 2 next arcs, each between adjacent member labels.
        assert [(a.from_label, a.to_label) for a in next_arcs] == [
            ("m0", "m1"),
            ("m1", "m2"),
        ]

    def test_change_request_touches_only_linkbase(self, fixture):
        space_before = export_museum_space(fixture, default_museum_spec("index"))
        space_after = export_museum_space(
            fixture, default_museum_spec("indexed-guided-tour")
        )
        assert space_before.uris() == space_after.uris()
        for uri in space_before.uris():
            before_text = serialize(space_before.document(uri))
            after_text = serialize(space_after.document(uri))
            if uri == "links.xml":
                assert before_text != after_text
            else:
                assert before_text == after_text, uri

    def test_linkbase_text_is_parseable_xml(self, fixture):
        from repro.xmlcore import parse

        text = linkbase_text(fixture, default_museum_spec("index"))
        assert parse(text).root_element.name.local == "links"


class TestXLinkSite:
    def test_site_has_page_per_data_document_plus_home(self, fixture):
        site = build_xlink_site(fixture, default_museum_spec("index"))
        assert len(site) == 14
        assert "index.html" in site and "guitar.html" in site

    def test_no_dangling_links(self, fixture):
        site = build_xlink_site(fixture, default_museum_spec("indexed-guided-tour"))
        assert site.check_links() == []

    def test_browsing_matches_woven_semantics(self, fixture):
        """The two composition mechanisms agree on where Next goes."""
        xlink_site = build_xlink_site(
            fixture, default_museum_spec("indexed-guided-tour")
        )
        woven_site = build_woven_site(
            fixture, default_museum_spec("indexed-guided-tour")
        )

        xlink_agent = UserAgent(xlink_site.provider())
        xlink_agent.open("guitar.html")
        woven_agent = UserAgent(woven_site.provider())
        woven_agent.open("PaintingNode/guitar.html")

        assert xlink_agent.follow_rel("next").title == woven_agent.follow_rel(
            "next"
        ).title

    def test_anchor_shape_per_access_structure(self, fixture):
        index_site = build_xlink_site(fixture, default_museum_spec("index"))
        igt_site = build_xlink_site(fixture, default_museum_spec("indexed-guided-tour"))
        index_rels = {a.rel for a in index_site.page("guitar.html").anchors()}
        igt_rels = {a.rel for a in igt_site.page("guitar.html").anchors()}
        assert "next" not in index_rels
        assert {"entry", "prev", "next"} <= igt_rels

    def test_painting_pages_show_stylesheet_content(self, fixture):
        site = build_xlink_site(fixture, default_museum_spec("index"))
        page = site.page("guernica.html")
        assert page.tree.find("h1").text_content() == "Guernica"
        assert "1937" in page.tree.find("dl").text_content()


class TestShowAndActuate:
    def test_tour_arcs_carry_show_replace(self, fixture):
        doc = export_linkbase(fixture, default_museum_spec("guided-tour"))
        lb = Linkbase.from_document("links.xml", doc)
        from repro.xlink import Actuate, Show

        for link in lb.extended_links():
            for arc in link.arcs:
                if arc.arcrole == NAV_NEXT_ARCROLE:
                    assert arc.show is Show.REPLACE
                    assert arc.actuate is Actuate.ON_REQUEST

    def test_embed_entries_exported_with_show_embed(self, fixture):
        from repro.core import AccessChoice, NavigationSpec
        from repro.xlink import Actuate, Show

        spec = NavigationSpec()
        spec.access["by-painter"] = AccessChoice(
            "index", label_attribute="title", embed_entries=True
        )
        doc = export_linkbase(fixture, spec)
        lb = Linkbase.from_document("links.xml", doc)
        entry_arcs = [
            arc
            for link in lb.extended_links()
            for arc in link.arcs
            if arc.arcrole == NAV_ENTRY_ARCROLE
        ]
        assert entry_arcs
        assert all(a.show is Show.EMBED for a in entry_arcs)
        assert all(a.actuate is Actuate.ON_LOAD for a in entry_arcs)

    def test_embedded_entries_transcluded_not_linked(self, fixture):
        from repro.core import AccessChoice, NavigationSpec, XLinkSiteBuilder

        spec = NavigationSpec()
        spec.access["by-painter"] = AccessChoice(
            "index", label_attribute="title", embed_entries=True
        )
        site = XLinkSiteBuilder(export_museum_space(fixture, spec)).build()
        guitar = site.page("guitar.html")
        sources = {a.get("data-source") for a in guitar.tree.findall("aside")}
        assert sources == {"avignon.xml", "guernica.xml"}
        assert guitar.anchors() == []  # embeds replace the anchors

    def test_embedded_content_is_one_level_deep(self, fixture):
        from repro.core import AccessChoice, NavigationSpec, XLinkSiteBuilder

        spec = NavigationSpec()
        spec.access["by-painter"] = AccessChoice(
            "index", label_attribute="title", embed_entries=True
        )
        site = XLinkSiteBuilder(export_museum_space(fixture, spec)).build()
        guitar = site.page("guitar.html")
        for aside in guitar.tree.findall("aside"):
            assert aside.findall("aside") == []
