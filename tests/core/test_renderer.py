"""Tests for the base program: content-only rendering."""

import pytest

from repro.baselines import museum_fixture
from repro.core import PageRenderer, build_plain_site


@pytest.fixture()
def fixture():
    return museum_fixture()


@pytest.fixture()
def renderer(fixture):
    return PageRenderer(fixture)


class TestContentOnlyPages:
    def test_node_page_has_title_and_heading(self, renderer, fixture):
        page = renderer.render_node(fixture.painting_node("guitar"))
        assert page.title == "Guitar"
        assert page.tree.find("h1").text_content() == "Guitar"

    def test_node_page_has_no_anchors(self, renderer, fixture):
        page = renderer.render_node(fixture.painting_node("guitar"))
        assert page.anchors() == []

    def test_painting_page_shows_image_and_details(self, renderer, fixture):
        page = renderer.render_node(fixture.painting_node("guernica"))
        assert page.tree.find("img") is not None
        details = page.tree.find("dl").text_content()
        assert "1937" in details and "cubism" in details

    def test_painter_page_has_no_image(self, renderer, fixture):
        page = renderer.render_node(fixture.painter_node("picasso"))
        assert page.tree.find("img") is None

    def test_home_page_is_anchor_free(self, renderer):
        page = renderer.render_home()
        assert page.path == "index.html"
        assert page.anchors() == []


class TestSiteAssembly:
    def test_inventory_covers_all_node_classes(self, renderer):
        nodes = renderer.node_inventory()
        classes = {n.node_class.name for n in nodes}
        assert classes == {"PainterNode", "PaintingNode"}
        assert len(nodes) == 13  # 4 painters + 9 paintings

    def test_plain_site_is_entirely_anchor_free(self, fixture):
        site = build_plain_site(fixture)
        assert len(site) == 14
        assert sum(len(p.anchors()) for p in site.pages()) == 0

    def test_page_paths_follow_node_uris(self, fixture):
        site = build_plain_site(fixture)
        assert "PaintingNode/guitar.html" in site
        assert "PainterNode/picasso.html" in site
