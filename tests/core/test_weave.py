"""Tests for the navigation aspect and weaving orchestration (Figure 6)."""

import pytest

from repro.baselines import museum_fixture
from repro.core import (
    NavigationAspect,
    NavigationWeaver,
    PageRenderer,
    build_plain_site,
    build_woven_site,
    build_woven_site_stacked,
    default_museum_spec,
)
from repro.navigation import UserAgent


@pytest.fixture()
def fixture():
    return museum_fixture()


class TestWovenSite:
    def test_navigation_confined_to_nav_blocks(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("index"))
        for page in site.pages():
            for a in page.tree.findall("a"):
                enclosing = [
                    anc.name.local
                    for anc in a.ancestors()
                    if hasattr(anc, "name")
                ]
                assert "nav" in enclosing, f"anchor outside <nav> in {page.path}"

    def test_no_dangling_links(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))
        assert site.check_links() == []

    def test_content_identical_to_plain_build(self, fixture):
        """Weaving adds navigation and changes nothing else."""
        from repro.xmlcore import serialize

        plain = build_plain_site(fixture)
        woven = build_woven_site(fixture, default_museum_spec("index"))
        assert plain.paths() == woven.paths()
        for path in plain.paths():
            plain_content = plain.page(path).content_region()
            woven_content = woven.page(path).content_region()
            assert serialize(plain_content) == serialize(woven_content), path

    def test_renderer_class_restored_after_build(self, fixture):
        build_woven_site(fixture, default_museum_spec("index"))
        assert not hasattr(PageRenderer.render_node, "__woven__")
        # And a fresh build is navigation-free again.
        assert sum(len(p.anchors()) for p in build_plain_site(fixture).pages()) == 0

    def test_stacked_specs_layer_their_navigation(self, fixture):
        stacked = build_woven_site_stacked(
            fixture,
            [default_museum_spec("index"), default_museum_spec("guided-tour")],
        )
        single = build_woven_site(fixture, default_museum_spec("index"))
        assert stacked.page("index.html").html().count("<nav") == 2
        assert single.page("index.html").html().count("<nav") == 1
        # The batch deployment unwound completely.
        assert not hasattr(PageRenderer.render_node, "__woven__")

    def test_browsing_the_woven_site(self, fixture):
        site = build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))
        agent = UserAgent(site.provider())
        agent.open("index.html")
        agent.click("Pablo Picasso")
        agent.click("Guitar")
        assert agent.follow_rel("next").uri == "PaintingNode/guernica.html"

    def test_change_request_alters_only_navigation(self, fixture):
        from repro.xmlcore import serialize

        before = build_woven_site(fixture, default_museum_spec("index"))
        after = build_woven_site(fixture, default_museum_spec("indexed-guided-tour"))
        for path in before.paths():
            assert serialize(before.page(path).content_region()) == serialize(
                after.page(path).content_region()
            )


class TestNavigationAspect:
    def test_counts_advised_pages(self, fixture):
        from repro.aop import Weaver

        aspect = NavigationAspect(default_museum_spec("index"), fixture)
        weaver = Weaver()
        deployment = weaver.deploy(aspect, [PageRenderer])
        try:
            PageRenderer(fixture).build_site()
        finally:
            weaver.undeploy(deployment)
        assert aspect.pages_advised == 14

    def test_contexts_materialized_once_per_aspect(self, fixture):
        aspect = NavigationAspect(default_museum_spec("index"), fixture)
        assert set(aspect.contexts) == {
            "by-painter:picasso",
            "by-painter:braque",
            "by-painter:dali",
            "by-painter:miro",
        }


class TestNavigationWeaver:
    def test_context_manager_deploys_and_restores(self, fixture):
        with NavigationWeaver(fixture, default_museum_spec("index")) as weaver:
            site = weaver.build_site()
            assert sum(len(p.anchors()) for p in site.pages()) > 0
        assert sum(len(p.anchors()) for p in build_plain_site(fixture).pages()) == 0

    def test_reconfigure_swaps_navigation_live(self, fixture):
        weaver = NavigationWeaver(fixture, default_museum_spec("index"))
        with weaver:
            before = weaver.build_site()
            weaver.reconfigure(default_museum_spec("indexed-guided-tour"))
            after = weaver.build_site()
        rels_before = {a.rel for p in before.pages() for a in p.anchors()}
        rels_after = {a.rel for p in after.pages() for a in p.anchors()}
        assert "next" not in rels_before
        assert "next" in rels_after

    def test_aspect_property_requires_deployment(self, fixture):
        weaver = NavigationWeaver(fixture, default_museum_spec("index"))
        with pytest.raises(RuntimeError):
            weaver.aspect


class TestLazyWovenProvider:
    def test_pages_render_on_demand_through_the_aspect(self, fixture):
        with NavigationWeaver(fixture, default_museum_spec("index")) as weaver:
            agent = UserAgent(weaver.provider())
            agent.open("index.html")
            page = agent.click("Pablo Picasso")
            assert page.uri == "PainterNode/picasso.html"
            assert {a.label for a in page.anchors} >= {"Guitar", "Guernica"}

    def test_reconfigure_changes_pages_rendered_afterwards(self, fixture):
        weaver = NavigationWeaver(fixture, default_museum_spec("index"))
        with weaver:
            agent = UserAgent(weaver.provider())
            before = agent.open("PaintingNode/guitar.html")
            assert before.anchors_with_rel("next") == []
            weaver.reconfigure(default_museum_spec("indexed-guided-tour"))
            after = agent.open("PaintingNode/guitar.html")
            assert len(after.anchors_with_rel("next")) == 1

    def test_missing_page(self, fixture):
        from repro.navigation import NavigationError

        with NavigationWeaver(fixture, default_museum_spec("index")) as weaver:
            provider = weaver.provider()
            with pytest.raises(NavigationError):
                provider.page("ghost.html")


class TestFailureInjection:
    def test_advice_exception_propagates_with_context(self, fixture):
        """A broken navigation spec must fail loudly, not render silently."""
        from repro.aop import Weaver

        broken = default_museum_spec("index")
        broken.expose("PaintingNode", "no_such_link_class")
        aspect = NavigationAspect(broken, fixture)
        weaver = Weaver()
        deployment = weaver.deploy(aspect, [PageRenderer])
        try:
            with pytest.raises(Exception) as info:
                PageRenderer(fixture).build_site()
            assert "no_such_link_class" in str(info.value)
        finally:
            weaver.undeploy(deployment)

    def test_renderer_restored_even_when_build_raises(self, fixture):
        broken = default_museum_spec("index")
        broken.expose("PaintingNode", "no_such_link_class")
        with pytest.raises(Exception):
            build_woven_site(fixture, broken)
        # The try/finally in build_woven_site must have undeployed.
        assert not hasattr(PageRenderer.render_node, "__woven__")
        assert sum(len(p.anchors()) for p in build_plain_site(fixture).pages()) == 0


class TestAudienceSites:
    def test_each_audience_gets_its_stack(self, fixture):
        from repro.core import build_audience_sites
        from repro.navigation import DEFAULT_AUDIENCES, AudienceBundle

        sites = build_audience_sites(fixture, DEFAULT_AUDIENCES)
        assert set(sites) == {"visitor", "curator", "tour-only"}
        # One <nav> block per stacked access structure.
        assert sites["visitor"].page("index.html").html().count("<nav") == 2
        assert sites["curator"].page("index.html").html().count("<nav") == 1
        # Every audience's runtime unwound: the renderer is clean.
        assert not hasattr(PageRenderer.render_node, "__woven__")
        # And bundles must name at least one structure.
        with pytest.raises(ValueError, match="stacks no structures"):
            AudienceBundle("empty", ())

    def test_prebuilt_specs_are_reused(self, fixture):
        from repro.core import build_audience_sites
        from repro.navigation import AudienceBundle

        spec = default_museum_spec("indexed-guided-tour")
        sites = build_audience_sites(
            fixture,
            [AudienceBundle("power-user", ("indexed-guided-tour",))],
            specs_by_access={"indexed-guided-tour": spec},
        )
        page = sites["power-user"].page("PaintingNode/guitar.html").html()
        assert 'rel="next"' in page
