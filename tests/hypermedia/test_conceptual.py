"""Tests for the conceptual schema and instance store."""

import pytest

from repro.hypermedia import (
    Cardinality,
    ConceptualSchema,
    InstanceError,
    InstanceStore,
    SchemaError,
)
from repro.baselines import build_museum_schema, build_museum_store


class TestSchemaConstruction:
    def test_add_class_with_mixed_attribute_forms(self):
        schema = ConceptualSchema()
        cls = schema.add_class("Painting", ["title", ("year", int), ("movement", str)])
        assert cls.attribute_names() == ["title", "year", "movement"]

    def test_duplicate_class_rejected(self):
        schema = ConceptualSchema()
        schema.add_class("Painter")
        with pytest.raises(SchemaError):
            schema.add_class("Painter")

    def test_relationship_requires_known_classes(self):
        schema = ConceptualSchema()
        schema.add_class("Painter")
        with pytest.raises(SchemaError):
            schema.add_relationship("paints", "Painter", "Painting")

    def test_inverse_relationship_materialized(self):
        schema = build_museum_schema()
        inverse = schema.relationship("painted_by")
        assert inverse.source == "Painting"
        assert inverse.target == "Painter"
        assert inverse.inverse == "paints"

    def test_duplicate_relationship_rejected(self):
        schema = build_museum_schema()
        with pytest.raises(SchemaError):
            schema.add_relationship("paints", "Painter", "Painting")

    def test_relationships_from(self):
        schema = build_museum_schema()
        names = {r.name for r in schema.relationships_from("Painting")}
        assert names == {"painted_by", "belongs_to"}

    def test_unknown_lookups_raise(self):
        schema = ConceptualSchema()
        with pytest.raises(SchemaError):
            schema.cls("Ghost")
        with pytest.raises(SchemaError):
            schema.relationship("ghosts")


class TestInstanceStore:
    @pytest.fixture()
    def store(self):
        return build_museum_store()

    def test_entities_created_and_fetched(self, store):
        assert store.get("Painting", "guitar").get("title") == "Guitar"

    def test_all_preserves_creation_order(self, store):
        ids = [e.entity_id for e in store.all("Painter")]
        assert ids == ["picasso", "braque", "dali", "miro"]

    def test_duplicate_id_rejected(self, store):
        with pytest.raises(InstanceError):
            store.create("Painter", "picasso", name="Again")

    def test_unknown_attribute_rejected(self, store):
        with pytest.raises(InstanceError):
            store.create("Painter", "new", name="X", birthplace="Malaga")

    def test_required_attribute_enforced(self, store):
        with pytest.raises(SchemaError):
            store.create("Painter", "anon")

    def test_attribute_type_enforced(self, store):
        with pytest.raises(SchemaError):
            store.create("Painting", "bad", title="T", year="not-a-year")

    def test_related_follows_relationship(self, store):
        picasso = store.get("Painter", "picasso")
        titles = {p.get("title") for p in store.related(picasso, "paints")}
        assert "Guernica" in titles and len(titles) == 3

    def test_inverse_maintained_automatically(self, store):
        guitar = store.get("Painting", "guitar")
        painters = store.related(guitar, "painted_by")
        assert [p.entity_id for p in painters] == ["picasso"]

    def test_relate_rejects_wrong_classes(self, store):
        picasso = store.get("Painter", "picasso")
        dali = store.get("Painter", "dali")
        with pytest.raises(InstanceError):
            store.relate(picasso, "paints", dali)

    def test_relate_is_idempotent(self, store):
        picasso = store.get("Painter", "picasso")
        guitar = store.get("Painting", "guitar")
        store.relate(picasso, "paints", guitar)  # already related
        assert len(store.related(picasso, "paints")) == 3

    def test_single_valued_relationship_enforced(self):
        schema = ConceptualSchema()
        schema.add_class("Museum", [("name", str)])
        schema.add_class("Director", [("name", str)])
        schema.add_relationship(
            "directed_by", "Museum", "Director", cardinality=Cardinality.ONE
        )
        store = InstanceStore(schema)
        museum = store.create("Museum", "prado")
        first = store.create("Director", "d1")
        second = store.create("Director", "d2")
        store.relate(museum, "directed_by", first)
        with pytest.raises(InstanceError):
            store.relate(museum, "directed_by", second)

    def test_related_one(self, store):
        guitar = store.get("Painting", "guitar")
        assert store.related_one(guitar, "painted_by").entity_id == "picasso"
        picasso = store.get("Painter", "picasso")
        with pytest.raises(InstanceError):
            store.related_one(picasso, "paints")

    def test_bulk_load(self):
        schema = build_museum_schema()
        store = InstanceStore(schema)
        store.bulk_load(
            entities=[
                ("Painter", "goya", {"name": "Francisco Goya"}),
                ("Painting", "maja", {"title": "La Maja", "year": 1800}),
            ],
            links=[(("Painter", "goya"), "paints", ("Painting", "maja"))],
        )
        goya = store.get("Painter", "goya")
        assert [p.entity_id for p in store.related(goya, "paints")] == ["maja"]
