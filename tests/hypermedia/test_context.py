"""Tests for navigational contexts and context families (the paper's §2)."""

import pytest

from repro.baselines import museum_fixture
from repro.hypermedia import (
    ContextFamily,
    GuidedTour,
    NavigationError,
    NavigationalContext,
    group_by_attribute,
    group_by_relationship,
)


@pytest.fixture()
def fixture():
    return museum_fixture()


@pytest.fixture()
def contexts(fixture):
    return fixture.contexts()


class TestNavigationalContext:
    def test_members_ordered_by_year(self, contexts):
        by_picasso = contexts["by-painter:picasso"]
        assert [n.node_id for n in by_picasso.members] == [
            "avignon",
            "guitar",
            "guernica",
        ]

    def test_position(self, contexts, fixture):
        by_picasso = contexts["by-painter:picasso"]
        assert by_picasso.position(fixture.painting_node("guitar")) == 1

    def test_next_and_previous(self, contexts, fixture):
        by_picasso = contexts["by-painter:picasso"]
        guitar = fixture.painting_node("guitar")
        assert by_picasso.next_after(guitar).node_id == "guernica"
        assert by_picasso.previous_before(guitar).node_id == "avignon"

    def test_ends_are_none(self, contexts, fixture):
        by_picasso = contexts["by-painter:picasso"]
        assert by_picasso.next_after(fixture.painting_node("guernica")) is None
        assert by_picasso.previous_before(fixture.painting_node("avignon")) is None

    def test_circular_access_structure_wraps_navigation(self, fixture):
        members = [
            fixture.painting_node(pid) for pid in ("avignon", "guitar", "guernica")
        ]
        context = NavigationalContext(
            "loop", members, GuidedTour(name="loop", circular=True)
        )
        assert context.next_after(members[-1]) == members[0]
        assert context.previous_before(members[0]) == members[-1]

    def test_non_member_position_raises(self, contexts, fixture):
        with pytest.raises(NavigationError):
            contexts["by-painter:picasso"].position(fixture.painting_node("memory"))

    def test_duplicate_members_removed(self, fixture):
        guitar = fixture.painting_node("guitar")
        context = NavigationalContext("dup", [guitar, guitar], GuidedTour(name="d"))
        assert len(context) == 1

    def test_anchors_delegate_to_access_structure(self, contexts, fixture):
        by_picasso = contexts["by-painter:picasso"]
        anchors = by_picasso.anchors_on(fixture.painting_node("guitar"))
        assert {a.rel for a in anchors} == {"entry"}  # Index by default

    def test_membership_operator(self, contexts, fixture):
        assert fixture.painting_node("guitar") in contexts["by-painter:picasso"]
        assert fixture.painting_node("memory") not in contexts["by-painter:picasso"]


class TestTheMuseumStory:
    """The paper's §2: same node, different contexts, different Next."""

    def test_guitar_next_differs_by_arrival_context(self, contexts, fixture):
        guitar = fixture.painting_node("guitar")
        via_author = contexts["by-painter:picasso"].next_after(guitar)
        via_movement = contexts["by-movement:cubism"].next_after(guitar)
        assert via_author.node_id == "guernica"      # next Picasso by year
        assert via_movement.node_id == "clarinet"    # next cubist work by year
        assert via_author != via_movement

    def test_same_painting_is_member_of_both_families(self, contexts, fixture):
        guitar = fixture.painting_node("guitar")
        assert guitar in contexts["by-painter:picasso"]
        assert guitar in contexts["by-movement:cubism"]


class TestContextFamilies:
    def test_one_context_per_partition_value(self, contexts):
        painters = {k for k in contexts if k.startswith("by-painter:")}
        assert painters == {
            "by-painter:picasso",
            "by-painter:braque",
            "by-painter:dali",
            "by-painter:miro",
        }

    def test_group_by_relationship_partition(self, fixture):
        partition = group_by_relationship("Painter", "paints")(fixture.store)
        assert {e.entity_id for e in partition["picasso"]} == {
            "guitar",
            "guernica",
            "avignon",
        }

    def test_group_by_attribute_partition(self, fixture):
        partition = group_by_attribute("Painting", "movement")(fixture.store)
        assert {e.entity_id for e in partition["surrealism"]} == {
            "memory",
            "elephants",
            "harlequin",
            "constellation",
        }

    def test_context_for_single_value(self, fixture):
        family = fixture.nav.context_family("by-painter")
        context = family.context_for(fixture.store, "dali")
        assert [n.node_id for n in context.members] == ["memory", "elephants"]

    def test_context_for_unknown_value_raises(self, fixture):
        family = fixture.nav.context_family("by-painter")
        with pytest.raises(NavigationError):
            family.context_for(fixture.store, "goya")

    def test_access_structure_factory_applied(self, fixture):
        fixture_igt = museum_fixture("indexed-guided-tour")
        context = fixture_igt.contexts()["by-painter:picasso"]
        assert context.access_structure.kind == "IndexedGuidedTour"

    def test_empty_partitions_produce_no_contexts(self, fixture):
        family = ContextFamily(
            name="empty",
            node_class=fixture.nav.node_class("PaintingNode"),
            partition=lambda store: {},
        )
        assert family.contexts(fixture.store) == {}
