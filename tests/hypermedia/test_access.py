"""Tests for access structures: Index, GuidedTour, IndexedGuidedTour, Menu."""

import pytest

from repro.baselines import museum_fixture
from repro.hypermedia import (
    GuidedTour,
    Index,
    IndexedGuidedTour,
    Menu,
    NavigationError,
)


@pytest.fixture()
def members():
    fixture = museum_fixture()
    # Picasso's paintings ordered by year: avignon (1907), guitar (1913),
    # guernica (1937).
    return [fixture.painting_node(pid) for pid in ("avignon", "guitar", "guernica")]


class TestIndex:
    def test_entries_one_anchor_per_member(self, members):
        index = Index(name="paintings", label_attribute="title")
        entries = index.entries(members)
        assert [a.label for a in entries] == [
            "Les Demoiselles d'Avignon",
            "Guitar",
            "Guernica",
        ]
        assert all(a.rel == "entry" for a in entries)

    def test_embedded_index_excludes_self(self, members):
        index = Index(name="paintings", label_attribute="title")
        anchors = index.anchors_on(members[1], members)
        assert [a.label for a in anchors] == ["Les Demoiselles d'Avignon", "Guernica"]

    def test_non_embedded_index_links_back(self, members):
        index = Index(
            name="paintings",
            label_attribute="title",
            embed_in_members=False,
            index_uri="paintings/index.html",
        )
        anchors = index.anchors_on(members[0], members)
        assert anchors == [
            type(anchors[0])("paintings", "paintings/index.html", "index")
        ]

    def test_label_falls_back_to_node_id(self, members):
        index = Index(name="paintings")  # no label attribute
        entries = index.entries(members)
        assert [a.label for a in entries] == ["avignon", "guitar", "guernica"]

    def test_non_member_rejected(self, members):
        index = Index(name="paintings")
        outsider = museum_fixture().painting_node("memory")
        with pytest.raises(NavigationError):
            index.anchors_on(outsider, members)


class TestGuidedTour:
    def test_middle_member_has_prev_and_next(self, members):
        tour = GuidedTour(name="tour")
        anchors = tour.anchors_on(members[1], members)
        rels = {a.rel: a.href for a in anchors}
        assert rels["prev"] == members[0].uri
        assert rels["next"] == members[2].uri

    def test_first_member_has_no_prev(self, members):
        tour = GuidedTour(name="tour")
        rels = [a.rel for a in tour.anchors_on(members[0], members)]
        assert rels == ["next"]

    def test_last_member_has_no_next(self, members):
        tour = GuidedTour(name="tour")
        rels = [a.rel for a in tour.anchors_on(members[2], members)]
        assert rels == ["prev"]

    def test_circular_tour_wraps(self, members):
        tour = GuidedTour(name="tour", circular=True)
        first = {a.rel: a.href for a in tour.anchors_on(members[0], members)}
        last = {a.rel: a.href for a in tour.anchors_on(members[2], members)}
        assert first["prev"] == members[2].uri
        assert last["next"] == members[0].uri

    def test_entry_is_tour_start(self, members):
        tour = GuidedTour(name="tour", label_attribute="title")
        (entry,) = tour.entries(members)
        assert entry.rel == "start"
        assert entry.href == members[0].uri

    def test_empty_tour_has_no_entry(self):
        assert GuidedTour(name="tour").entries([]) == []

    def test_singleton_tour_has_no_neighbours(self, members):
        tour = GuidedTour(name="tour", circular=True)
        assert tour.anchors_on(members[0], [members[0]]) == []


class TestIndexedGuidedTour:
    def test_combines_index_and_tour_anchors(self, members):
        igt = IndexedGuidedTour(name="paintings", label_attribute="title")
        anchors = igt.anchors_on(members[1], members)
        rels = [a.rel for a in anchors]
        assert rels == ["entry", "entry", "prev", "next"]

    def test_figure_4_shape_two_extra_anchors(self, members):
        """The paper's change: IGT adds exactly prev/next over Index."""
        index = Index(name="paintings", label_attribute="title")
        igt = IndexedGuidedTour(name="paintings", label_attribute="title")
        for member in members:
            plain = index.anchors_on(member, members)
            extended = igt.anchors_on(member, members)
            extra = [a for a in extended if a.rel in ("prev", "next")]
            assert len(extended) == len(plain) + len(extra)
            assert 1 <= len(extra) <= 2

    def test_entries_match_plain_index(self, members):
        igt = IndexedGuidedTour(name="paintings", label_attribute="title")
        index = Index(name="paintings", label_attribute="title")
        assert igt.entries(members) == index.entries(members)

    def test_circular_variant(self, members):
        igt = IndexedGuidedTour(name="paintings", circular=True)
        rels = [a.rel for a in igt.anchors_on(members[0], members)]
        assert "prev" in rels and "next" in rels


class TestMenu:
    def test_static_items_everywhere(self, members):
        menu = Menu(name="main").add("Home", "index.html").add("About", "about.html")
        assert [a.label for a in menu.entries(members)] == ["Home", "About"]
        assert [a.label for a in menu.anchors_on(members[0], members)] == [
            "Home",
            "About",
        ]
        assert all(a.rel == "menu" for a in menu.entries(members))
