"""Property-based tests for the instance store's relational invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.hypermedia import ConceptualSchema, InstanceStore

ids = st.text(string.ascii_lowercase, min_size=1, max_size=6)


def museum_like_schema() -> ConceptualSchema:
    schema = ConceptualSchema()
    schema.add_class("A", [("name", str)])
    schema.add_class("B", [("name", str)])
    schema.add_relationship("ab", "A", "B", inverse="ba")
    return schema


@st.composite
def stores(draw):
    schema = museum_like_schema()
    store = InstanceStore(schema)
    a_ids = draw(st.lists(ids, min_size=1, max_size=6, unique=True))
    b_ids = draw(st.lists(ids, min_size=1, max_size=6, unique=True))
    for a in a_ids:
        store.create("A", a)
    for b in b_ids:
        store.create("B", b)
    n_links = draw(st.integers(0, 12))
    for __ in range(n_links):
        a = draw(st.sampled_from(a_ids))
        b = draw(st.sampled_from(b_ids))
        store.relate(store.get("A", a), "ab", store.get("B", b))
    return store


@settings(max_examples=150, deadline=None)
@given(stores())
def test_inverse_relationship_is_symmetric(store):
    for a in store.all("A"):
        for b in store.related(a, "ab"):
            assert a in store.related(b, "ba")
    for b in store.all("B"):
        for a in store.related(b, "ba"):
            assert b in store.related(a, "ab")


@settings(max_examples=150, deadline=None)
@given(stores())
def test_related_yields_correct_classes_only(store):
    for a in store.all("A"):
        assert all(e.cls.name == "B" for e in store.related(a, "ab"))


@settings(max_examples=150, deadline=None)
@given(stores())
def test_relate_is_idempotent_under_repetition(store):
    for a in store.all("A"):
        targets_before = store.related(a, "ab")
        for b in targets_before:
            store.relate(a, "ab", b)  # repeat every existing link
        assert store.related(a, "ab") == targets_before


@settings(max_examples=150, deadline=None)
@given(stores())
def test_link_targets_are_unique_and_ordered(store):
    for a in store.all("A"):
        targets = store.related(a, "ab")
        assert len(targets) == len(set(targets))
