"""Tests for navigational nodes and links as views."""

import pytest

from repro.baselines import build_museum_schema, build_museum_store, museum_fixture
from repro.hypermedia import LinkClass, NodeClass, SchemaError


@pytest.fixture()
def fixture():
    return museum_fixture()


class TestNodeViews:
    def test_node_exposes_viewed_attributes(self, fixture):
        guitar = fixture.painting_node("guitar")
        attrs = guitar.attributes()
        assert attrs["title"] == "Guitar"
        assert attrs["year"] == 1913

    def test_computed_view_attribute(self, fixture):
        guitar = fixture.painting_node("guitar")
        assert guitar.get("painter") == "Pablo Picasso"

    def test_unviewed_attribute_not_exposed(self, fixture):
        painter = fixture.painter_node("picasso")
        with pytest.raises(SchemaError):
            painter.get("year")

    def test_uri_from_template(self, fixture):
        guitar = fixture.painting_node("guitar")
        assert guitar.uri == "PaintingNode/guitar.html"

    def test_custom_uri_template(self):
        store = build_museum_store()
        node_class = NodeClass(
            "P", "Painting", uri_template="museum/{id}/index.html"
        ).view("title")
        node = node_class.instantiate(store.get("Painting", "guitar"), store)
        assert node.uri == "museum/guitar/index.html"

    def test_instantiate_rejects_wrong_class(self, fixture):
        painting_class = fixture.nav.node_class("PaintingNode")
        picasso = fixture.store.get("Painter", "picasso")
        with pytest.raises(SchemaError):
            painting_class.instantiate(picasso, fixture.store)

    def test_node_equality_is_by_view_and_entity(self, fixture):
        assert fixture.painting_node("guitar") == fixture.painting_node("guitar")
        assert fixture.painting_node("guitar") != fixture.painting_node("guernica")

    def test_same_entity_different_node_classes_differ(self, fixture):
        store = fixture.store
        other_view = NodeClass("PaintingCard", "Painting").view("title")
        entity = store.get("Painting", "guitar")
        a = fixture.nav.node_class("PaintingNode").instantiate(entity, store)
        b = other_view.instantiate(entity, store)
        assert a != b


class TestLinkClasses:
    def test_resolve_yields_concrete_links(self, fixture):
        picasso = fixture.painter_node("picasso")
        links = fixture.nav.link_class("paints").resolve(picasso)
        assert {link.target.node_id for link in links} == {
            "guitar",
            "guernica",
            "avignon",
        }

    def test_link_titles_use_title_attribute(self, fixture):
        picasso = fixture.painter_node("picasso")
        links = fixture.nav.link_class("paints").resolve(picasso)
        assert "Guernica" in {link.title for link in links}

    def test_link_href_is_target_uri(self, fixture):
        guitar = fixture.painting_node("guitar")
        (link,) = fixture.nav.link_class("painted_by").resolve(guitar)
        assert link.href == "PainterNode/picasso.html"

    def test_resolve_rejects_wrong_source(self, fixture):
        guitar = fixture.painting_node("guitar")
        with pytest.raises(SchemaError):
            fixture.nav.link_class("paints").resolve(guitar)


class TestNavigationalSchemaValidation:
    def test_node_class_must_view_known_class(self):
        from repro.hypermedia import NavigationalSchema

        nav = NavigationalSchema(build_museum_schema())
        with pytest.raises(SchemaError):
            nav.add_node_class(NodeClass("SculptureNode", "Sculpture"))

    def test_link_class_endpoints_must_match_relationship(self):
        from repro.hypermedia import NavigationalSchema

        conceptual = build_museum_schema()
        nav = NavigationalSchema(conceptual)
        painter = nav.add_node_class(NodeClass("PainterNode", "Painter"))
        painting = nav.add_node_class(NodeClass("PaintingNode", "Painting"))
        with pytest.raises(SchemaError):
            nav.add_link_class(
                LinkClass("bad", "paints", source=painting, target=painter)
            )

    def test_duplicate_registrations_rejected(self, fixture):
        with pytest.raises(SchemaError):
            fixture.nav.add_node_class(NodeClass("PaintingNode", "Painting"))

    def test_link_classes_from(self, fixture):
        names = {lc.name for lc in fixture.nav.link_classes_from("PaintingNode")}
        assert names == {"painted_by"}

    def test_validate_passes_on_fixture(self, fixture):
        fixture.nav.validate()
