"""Tests for arc expansion and the link graph."""

import pytest

from repro.xlink import (
    LinkGraph,
    XLinkSyntaxError,
    expand_arcs,
    parse_extended_link,
)
from repro.xmlcore import parse_element

XLINK = 'xmlns:xlink="http://www.w3.org/1999/xlink"'


def make_link(body: str):
    return parse_extended_link(
        parse_element(f'<links {XLINK} xlink:type="extended">{body}</links>')
    )


class TestExpansion:
    def test_one_to_one(self):
        link = make_link(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="b"/>'
        )
        (traversal,) = expand_arcs(link)
        assert str(traversal.start.href) == "a.xml"
        assert str(traversal.end.href) == "b.xml"

    def test_shared_label_fans_out(self):
        link = make_link(
            '<l xlink:type="locator" xlink:href="p.xml" xlink:label="painter"/>'
            '<l xlink:type="locator" xlink:href="g1.xml" xlink:label="painting"/>'
            '<l xlink:type="locator" xlink:href="g2.xml" xlink:label="painting"/>'
            '<arc xlink:type="arc" xlink:from="painter" xlink:to="painting"/>'
        )
        assert len(expand_arcs(link)) == 2

    def test_missing_from_means_every_participant(self):
        link = make_link(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>'
            '<arc xlink:type="arc" xlink:to="b"/>'
        )
        starts = {str(t.start.href) for t in expand_arcs(link)}
        assert starts == {"a.xml", "b.xml"}

    def test_missing_both_is_full_cross_product(self):
        link = make_link(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>'
            '<arc xlink:type="arc"/>'
        )
        assert len(expand_arcs(link)) == 4

    def test_local_resources_participate(self):
        link = make_link(
            '<r xlink:type="resource" xlink:label="here">content</r>'
            '<l xlink:type="locator" xlink:href="away.xml" xlink:label="there"/>'
            '<arc xlink:type="arc" xlink:from="here" xlink:to="there"/>'
        )
        (traversal,) = expand_arcs(link)
        assert traversal.start.label == "here"

    def test_undefined_label_strict_raises(self):
        link = make_link(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="ghost"/>'
        )
        with pytest.raises(XLinkSyntaxError):
            expand_arcs(link)

    def test_undefined_label_lenient_is_empty(self):
        link = make_link(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="ghost"/>'
        )
        assert expand_arcs(link, strict=False) == []

    def test_duplicate_arcs_expand_once(self):
        link = make_link(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="b"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="b"/>'
        )
        assert len(expand_arcs(link)) == 1


class TestLinkGraph:
    def _museum_graph(self) -> LinkGraph:
        link = make_link(
            '<l xlink:type="locator" xlink:href="picasso.xml" xlink:label="painter"/>'
            '<l xlink:type="locator" xlink:href="guitar.xml" xlink:label="painting"/>'
            '<l xlink:type="locator" xlink:href="guernica.xml" xlink:label="painting"/>'
            '<arc xlink:type="arc" xlink:from="painter" xlink:to="painting" '
            'xlink:arcrole="urn:paints"/>'
            '<arc xlink:type="arc" xlink:from="painting" xlink:to="painter" '
            'xlink:arcrole="urn:painted-by"/>'
        )
        return LinkGraph.from_links([link])

    def test_outgoing_by_href_string(self):
        graph = self._museum_graph()
        assert len(graph.outgoing("picasso.xml")) == 2

    def test_incoming(self):
        graph = self._museum_graph()
        assert len(graph.incoming("picasso.xml")) == 2
        assert len(graph.incoming("guitar.xml")) == 1

    def test_outgoing_by_arcrole(self):
        graph = self._museum_graph()
        back = graph.outgoing_by_arcrole("guitar.xml", "urn:painted-by")
        assert len(back) == 1
        assert str(back[0].end.href) == "picasso.xml"

    def test_resources_enumerated(self):
        graph = self._museum_graph()
        assert graph.resources() == {"picasso.xml", "guitar.xml", "guernica.xml"}

    def test_len_counts_traversals(self):
        assert len(self._museum_graph()) == 4

    def test_unknown_resource_has_no_edges(self):
        graph = self._museum_graph()
        assert graph.outgoing("nowhere.xml") == []

    def test_traversal_describe_mentions_endpoints(self):
        graph = self._museum_graph()
        text = graph.outgoing("picasso.xml")[0].describe()
        assert "picasso.xml" in text and "->" in text
