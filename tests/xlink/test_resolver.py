"""Tests for URI resolution and the in-memory URI space."""

import pytest

from repro.xlink import UriReference, UriSpace, XLinkResolutionError, resolve_uri
from repro.xmlcore import parse


class TestResolveUri:
    @pytest.mark.parametrize(
        ("base", "reference", "expected"),
        [
            ("links.xml", "picasso.xml", "picasso.xml"),
            ("museum/links.xml", "picasso.xml", "museum/picasso.xml"),
            ("museum/links.xml", "../top.xml", "top.xml"),
            ("museum/links.xml", "halls/h1.xml", "museum/halls/h1.xml"),
            ("links.xml", "/absolute.xml", "/absolute.xml"),
            ("links.xml", "http://w3.org/x", "http://w3.org/x"),
            ("museum/links.xml", "", "museum/links.xml"),
        ],
    )
    def test_resolution(self, base, reference, expected):
        assert resolve_uri(base, reference) == expected


class TestUriReference:
    def test_parse_splits_fragment(self):
        ref = UriReference.parse("picasso.xml#guitar")
        assert (ref.uri, ref.fragment) == ("picasso.xml", "guitar")

    def test_str_round_trip(self):
        assert str(UriReference.parse("a.xml#element(x/1)")) == "a.xml#element(x/1)"

    def test_fragment_only(self):
        ref = UriReference.parse("#guitar")
        assert ref.uri == ""
        assert ref.fragment == "guitar"


class TestUriSpace:
    @pytest.fixture()
    def space(self) -> UriSpace:
        space = UriSpace()
        space.add(
            "picasso.xml",
            "<painter id='picasso'><painting id='guitar'><title>Guitar</title>"
            "</painting></painter>",
        )
        space.add("museum/hall.xml", "<hall id='h1'/>")
        return space

    def test_add_accepts_text_and_documents(self, space):
        doc = parse("<x/>")
        assert space.add("x.xml", doc) is doc
        assert "x.xml" in space

    def test_document_lookup(self, space):
        assert space.document("picasso.xml").root_element.get("id") == "picasso"

    def test_document_lookup_with_base(self, space):
        doc = space.document("hall.xml", base="museum/links.xml")
        assert doc.root_element.get("id") == "h1"

    def test_missing_document_raises_with_known_uris(self, space):
        with pytest.raises(XLinkResolutionError) as info:
            space.document("ghost.xml")
        assert "picasso.xml" in str(info.value)

    def test_resolve_without_fragment_returns_root(self, space):
        _, elements = space.resolve("picasso.xml")
        assert elements[0].get("id") == "picasso"

    def test_resolve_with_shorthand_fragment(self, space):
        _, elements = space.resolve("picasso.xml#guitar")
        assert elements[0].get("id") == "guitar"

    def test_resolve_with_xpointer_fragment(self, space):
        _, elements = space.resolve("picasso.xml#xpointer(//title)")
        assert elements[0].text_content() == "Guitar"

    def test_resolve_element_strictness(self, space):
        with pytest.raises(XLinkResolutionError):
            space.resolve_element("picasso.xml#missing")

    def test_same_document_reference_needs_base(self, space):
        with pytest.raises(XLinkResolutionError):
            space.resolve("#guitar")

    def test_same_document_reference_with_base(self, space):
        _, elements = space.resolve("#guitar", base="picasso.xml")
        assert elements[0].get("id") == "guitar"
