"""Tests for harvesting XLink markup from documents."""

import pytest

from repro.xlink import (
    Actuate,
    ExtendedLink,
    Show,
    SimpleLink,
    UriReference,
    XLinkSyntaxError,
    find_links,
    parse_extended_link,
    parse_simple_link,
)
from repro.xmlcore import parse, parse_element

XLINK = 'xmlns:xlink="http://www.w3.org/1999/xlink"'


class TestSimpleLinks:
    def test_minimal_simple_link(self):
        el = parse_element(f'<a {XLINK} xlink:type="simple" xlink:href="p.xml"/>')
        link = parse_simple_link(el)
        assert link.href == UriReference("p.xml")

    def test_href_with_fragment(self):
        el = parse_element(
            f'<a {XLINK} xlink:type="simple" xlink:href="p.xml#guitar"/>'
        )
        assert parse_simple_link(el).href == UriReference("p.xml", "guitar")

    def test_all_attributes(self):
        el = parse_element(
            f'<a {XLINK} xlink:type="simple" xlink:href="p.xml" '
            'xlink:role="urn:role" xlink:arcrole="urn:arc" xlink:title="T" '
            'xlink:show="new" xlink:actuate="onRequest"/>'
        )
        link = parse_simple_link(el)
        assert link.role == "urn:role"
        assert link.arcrole == "urn:arc"
        assert link.title == "T"
        assert link.show is Show.NEW
        assert link.actuate is Actuate.ON_REQUEST

    def test_simple_link_without_href_rejected(self):
        el = parse_element(f'<a {XLINK} xlink:type="simple"/>')
        with pytest.raises(XLinkSyntaxError):
            parse_simple_link(el)

    def test_bad_show_value_rejected(self):
        el = parse_element(
            f'<a {XLINK} xlink:type="simple" xlink:href="x" xlink:show="popup"/>'
        )
        with pytest.raises(XLinkSyntaxError):
            parse_simple_link(el)

    def test_bad_type_value_rejected(self):
        doc = parse(f'<a {XLINK} xlink:type="hyper"/>')
        with pytest.raises(XLinkSyntaxError):
            find_links(doc)


EXTENDED = f"""
<links {XLINK} xlink:type="extended" xlink:title="museum links">
  <loc xlink:type="locator" xlink:href="picasso.xml" xlink:label="painter"/>
  <loc xlink:type="locator" xlink:href="guitar.xml" xlink:label="painting"/>
  <loc xlink:type="locator" xlink:href="guernica.xml" xlink:label="painting"/>
  <local xlink:type="resource" xlink:label="index">Index page</local>
  <go xlink:type="arc" xlink:from="painter" xlink:to="painting"
      xlink:arcrole="urn:paints" xlink:show="replace"/>
  <ttl xlink:type="title">The museum linkbase</ttl>
  <ignored xlink:type="none"><loc xlink:type="locator" xlink:href="no.xml"/></ignored>
</links>
"""


class TestExtendedLinks:
    def test_participants_collected(self):
        link = parse_extended_link(parse_element(EXTENDED))
        assert len(link.locators) == 3
        assert len(link.resources) == 1

    def test_labels(self):
        link = parse_extended_link(parse_element(EXTENDED))
        assert link.labels() == {"painter", "painting", "index"}

    def test_arc_attributes(self):
        link = parse_extended_link(parse_element(EXTENDED))
        (arc,) = link.arcs
        assert (arc.from_label, arc.to_label) == ("painter", "painting")
        assert arc.arcrole == "urn:paints"
        assert arc.show is Show.REPLACE

    def test_title_element_used_when_no_attribute(self):
        source = EXTENDED.replace(' xlink:title="museum links"', "")
        link = parse_extended_link(parse_element(source))
        assert link.title == "The museum linkbase"

    def test_title_attribute_wins(self):
        link = parse_extended_link(parse_element(EXTENDED))
        assert link.title == "museum links"

    def test_type_none_children_skipped(self):
        link = parse_extended_link(parse_element(EXTENDED))
        hrefs = {str(l.href) for l in link.locators}
        assert "no.xml" not in hrefs

    def test_locator_without_href_rejected(self):
        source = f"""
        <links {XLINK} xlink:type="extended">
          <loc xlink:type="locator" xlink:label="x"/>
        </links>"""
        with pytest.raises(XLinkSyntaxError):
            parse_extended_link(parse_element(source))

    def test_bad_label_rejected(self):
        source = f"""
        <links {XLINK} xlink:type="extended">
          <loc xlink:type="locator" xlink:href="x" xlink:label="two words"/>
        </links>"""
        with pytest.raises(XLinkSyntaxError):
            parse_extended_link(parse_element(source))

    def test_resource_element_kept(self):
        link = parse_extended_link(parse_element(EXTENDED))
        (resource,) = link.resources
        assert resource.element.text_content() == "Index page"


class TestFindLinks:
    def test_finds_both_kinds_in_document_order(self):
        doc = parse(
            f"""
        <page {XLINK}>
          <a xlink:type="simple" xlink:href="one.xml"/>
          <links xlink:type="extended"/>
          <deep><a xlink:type="simple" xlink:href="two.xml"/></deep>
        </page>"""
        )
        links = find_links(doc)
        kinds = [type(l).__name__ for l in links]
        assert kinds == ["SimpleLink", "ExtendedLink", "SimpleLink"]

    def test_does_not_descend_into_extended_links(self):
        doc = parse(
            f"""
        <page {XLINK}>
          <links xlink:type="extended">
            <a xlink:type="simple" xlink:href="inner.xml"/>
          </links>
        </page>"""
        )
        links = find_links(doc)
        assert len(links) == 1
        assert isinstance(links[0], ExtendedLink)

    def test_simple_link_content_is_scanned(self):
        doc = parse(
            f"""
        <page {XLINK}>
          <a xlink:type="simple" xlink:href="outer.xml">
            <b xlink:type="simple" xlink:href="inner.xml"/>
          </a>
        </page>"""
        )
        assert len(find_links(doc)) == 2

    def test_document_without_links(self):
        assert find_links(parse("<page><p>plain</p></page>")) == []
