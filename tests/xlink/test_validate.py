"""Tests for XLink structural validation."""

import pytest

from repro.xlink import (
    Severity,
    assert_valid,
    parse_extended_link,
    parse_simple_link,
    validate_link,
)
from repro.xmlcore import parse_element

XLINK = 'xmlns:xlink="http://www.w3.org/1999/xlink"'


def extended(body: str):
    return parse_extended_link(
        parse_element(f'<links {XLINK} xlink:type="extended">{body}</links>')
    )


def errors_of(link):
    return [i for i in validate_link(link) if i.severity is Severity.ERROR]


def warnings_of(link):
    return [i for i in validate_link(link) if i.severity is Severity.WARNING]


class TestExtendedValidation:
    def test_clean_link(self):
        link = extended(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="b"/>'
        )
        assert validate_link(link) == []

    def test_arc_to_undefined_label_is_error(self):
        link = extended(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="ghost"/>'
        )
        assert any("ghost" in e.message for e in errors_of(link))

    def test_duplicate_arc_is_error(self):
        link = extended(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="a"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="a"/>'
        )
        assert any("duplicate" in e.message for e in errors_of(link))

    def test_unused_label_is_warning(self):
        link = extended(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>'
            '<l xlink:type="locator" xlink:href="c.xml" xlink:label="unused"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="b"/>'
        )
        assert any("unused" in w.message for w in warnings_of(link))

    def test_unlabelled_participant_with_explicit_arcs_is_warning(self):
        link = extended(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="a"/>'
        )
        assert warnings_of(link)

    def test_open_arc_uses_every_participant_no_warning(self):
        link = extended(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<l xlink:type="locator" xlink:href="b.xml"/>'
            '<arc xlink:type="arc"/>'
        )
        assert warnings_of(link) == []

    def test_participants_without_arcs_is_warning(self):
        link = extended('<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>')
        assert any("no arcs" in w.message for w in warnings_of(link))

    def test_empty_link_is_warning(self):
        assert any("no participants" in w.message for w in warnings_of(extended("")))

    def test_assert_valid_raises_on_errors_only(self):
        noisy = extended('<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>')
        assert_valid(noisy)  # warnings do not raise
        broken = extended(
            '<l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>'
            '<arc xlink:type="arc" xlink:from="a" xlink:to="ghost"/>'
        )
        with pytest.raises(ValueError):
            assert_valid(broken)


class TestSimpleValidation:
    def test_clean_simple_link(self):
        el = parse_element(f'<a {XLINK} xlink:type="simple" xlink:href="x.xml"/>')
        assert validate_link(parse_simple_link(el)) == []

    def test_empty_href_is_error(self):
        el = parse_element(f'<a {XLINK} xlink:type="simple" xlink:href=""/>')
        assert errors_of(parse_simple_link(el))
