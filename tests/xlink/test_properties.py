"""Property-based tests for XLink invariants.

The linkbase graph invariants: every traversal connects participants of the
same link, arc expansion size equals the product of the endpoint label
populations, and the graph's outgoing/incoming indexes agree with the flat
traversal list.
"""


from hypothesis import given, settings, strategies as st

from repro.xlink import Arc, ExtendedLink, LinkGraph, Locator, UriReference, expand_arcs

labels = st.sampled_from(["painter", "painting", "movement", "hall"])
uris = st.builds(
    lambda stem, n: f"{stem}{n}.xml",
    st.sampled_from(["doc", "page", "node"]),
    st.integers(0, 9),
)


@st.composite
def extended_links(draw) -> ExtendedLink:
    locators = tuple(
        Locator(href=UriReference(draw(uris)), label=draw(labels))
        for _ in range(draw(st.integers(1, 6)))
    )
    present = sorted({l.label for l in locators})
    arcs = tuple(
        Arc(
            from_label=draw(st.one_of(st.none(), st.sampled_from(present))),
            to_label=draw(st.one_of(st.none(), st.sampled_from(present))),
            arcrole=draw(st.one_of(st.none(), st.just("urn:next"))),
        )
        for _ in range(draw(st.integers(0, 4)))
    )
    return ExtendedLink(locators=locators, arcs=arcs)


def population(link: ExtendedLink, label):
    return len(link.participants_for_label(label))


@settings(max_examples=200, deadline=None)
@given(extended_links())
def test_expansion_size_is_product_of_label_populations(link):
    seen: set[tuple] = set()
    expected = 0
    for arc in link.arcs:
        pair = (arc.from_label, arc.to_label)
        if pair in seen:
            continue  # duplicates expand once
        seen.add(pair)
        expected += population(link, arc.from_label) * population(link, arc.to_label)
    assert len(expand_arcs(link, strict=False)) == expected


@settings(max_examples=200, deadline=None)
@given(extended_links())
def test_every_traversal_connects_participants_of_its_link(link):
    participants = set(map(id, link.participants()))
    for traversal in expand_arcs(link, strict=False):
        assert id(traversal.start) in participants
        assert id(traversal.end) in participants
        assert traversal.link is link


@settings(max_examples=200, deadline=None)
@given(st.lists(extended_links(), max_size=4))
def test_graph_indexes_agree_with_traversal_list(links):
    graph = LinkGraph.from_links(links, strict=False)
    total_out = sum(len(graph.outgoing(key)) for key in graph.resources())
    total_in = sum(len(graph.incoming(key)) for key in graph.resources())
    assert total_out == len(graph.traversals)
    assert total_in == len(graph.traversals)


@settings(max_examples=200, deadline=None)
@given(extended_links())
def test_arc_endpoints_respect_labels(link):
    for traversal in expand_arcs(link, strict=False):
        if traversal.arc.from_label is not None:
            assert traversal.start.label == traversal.arc.from_label
        if traversal.arc.to_label is not None:
            assert traversal.end.label == traversal.arc.to_label
