"""Conformance checks against markup shapes from the XLink 1.0 spec itself.

The spec's prose examples (course/student extended links, the remote
resource fan-out, linkbase chaining) are reproduced here as parse-and-
expand fixtures, so our processor's reading of the normative data model is
pinned to the document the paper cites as [7].
"""


from repro.xlink import (
    Actuate,
    LinkGraph,
    Show,
    UriSpace,
    XLinkType,
    expand_arcs,
    find_links,
    parse_extended_link,
    xlink_type,
)
from repro.xmlcore import parse, parse_element

XLINK = 'xmlns:xlink="http://www.w3.org/1999/xlink"'

# Adapted from XLink 1.0 §5.1's course-load example: an extended link with
# several participants per label and one arc over the label pair.
COURSE_LOAD = f"""
<courseload {XLINK} xlink:type="extended">
  <tooltip xlink:type="title">Course Load for Pat Jones</tooltip>
  <person xlink:type="locator" xlink:href="students/patjones62.xml"
          xlink:label="student62" xlink:role="http://www.example.com/linkprops/student"
          xlink:title="Pat Jones"/>
  <person xlink:type="locator" xlink:href="profs/jaysmith7.xml"
          xlink:label="prof7" xlink:role="http://www.example.com/linkprops/professor"
          xlink:title="Dr. Jay Smith"/>
  <course xlink:type="locator" xlink:href="courses/cs101.xml"
          xlink:label="CS-101" xlink:title="Computer Science 101"/>
  <go xlink:type="arc" xlink:from="student62" xlink:to="CS-101"
      xlink:show="new" xlink:actuate="onRequest"
      xlink:arcrole="http://www.example.com/linkprops/attends"
      xlink:title="Pat Jones, attending CS 101"/>
</courseload>
"""


class TestCourseLoadExample:
    def test_link_harvested(self):
        link = parse_extended_link(parse_element(COURSE_LOAD))
        assert len(link.locators) == 3
        assert link.title == "Course Load for Pat Jones"

    def test_locator_roles_preserved(self):
        link = parse_extended_link(parse_element(COURSE_LOAD))
        student = next(loc for loc in link.locators if loc.label == "student62")
        assert student.role == "http://www.example.com/linkprops/student"
        assert student.title == "Pat Jones"

    def test_arc_traversal_semantics(self):
        link = parse_extended_link(parse_element(COURSE_LOAD))
        (traversal,) = expand_arcs(link)
        assert str(traversal.start.href) == "students/patjones62.xml"
        assert str(traversal.end.href) == "courses/cs101.xml"
        assert traversal.arc.show is Show.NEW
        assert traversal.arc.actuate is Actuate.ON_REQUEST
        assert traversal.arc.arcrole == "http://www.example.com/linkprops/attends"

    def test_label_is_not_an_id(self):
        """Several participants may share a label (spec §5.1.3)."""
        doubled = COURSE_LOAD.replace('xlink:label="prof7"', 'xlink:label="student62"')
        link = parse_extended_link(parse_element(doubled))
        assert len(link.participants_for_label("student62")) == 2
        assert len(expand_arcs(link)) == 2


class TestSimpleLinkConformance:
    def test_spec_simple_link_shape(self):
        # The classic inline link: type, href, optional behaviour attributes.
        doc = parse(
            f"""
        <my:crossReference {XLINK} xmlns:my="http://example.com/"
            xlink:type="simple" xlink:href="students.xml"
            xlink:role="http://www.example.com/linkprops/studentlist"
            xlink:title="Current List of Students"
            xlink:show="replace" xlink:actuate="onRequest">
          Current Students
        </my:crossReference>"""
        )
        (link,) = find_links(doc)
        assert str(link.href) == "students.xml"
        assert link.show is Show.REPLACE
        assert link.element.text_content().strip() == "Current Students"

    def test_element_names_are_irrelevant(self):
        """XLink processors dispatch on xlink:type, never on element names."""
        for name in ("a", "crossReference", "völlig-beliebig"):
            el = parse_element(
                f'<{name} {XLINK} xlink:type="simple" xlink:href="x.xml"/>'
            )
            assert xlink_type(el) is XLinkType.SIMPLE

    def test_none_type_disables_processing(self):
        doc = parse(
            f"""
        <page {XLINK}>
          <a xlink:type="none" xlink:href="not-a-link.xml"/>
        </page>"""
        )
        assert find_links(doc) == []


class TestOutOfLineThirdPartyLinks:
    """§2.3: extended links can link documents that do not know about them —
    the property the paper's whole proposal rests on."""

    def test_data_documents_need_no_markup(self):
        space = UriSpace()
        space.add("students.xml", "<students><student id='pat'/></students>")
        space.add("courses.xml", "<courses><course id='cs101'/></courses>")
        space.add(
            "linkbase.xml",
            f"""
            <lb {XLINK}>
              <set xlink:type="extended">
                <l xlink:type="locator" xlink:href="students.xml#pat" xlink:label="s"/>
                <l xlink:type="locator" xlink:href="courses.xml#cs101" xlink:label="c"/>
                <a xlink:type="arc" xlink:from="s" xlink:to="c"/>
              </set>
            </lb>""",
        )
        graph = LinkGraph.from_links(
            [l for l in find_links(space.document("linkbase.xml"))
             if not hasattr(l, "href")]
        )
        (traversal,) = graph.outgoing("students.xml#pat")
        # The endpoints resolve into documents that carry zero link markup.
        __, elements = space.resolve(traversal.end.href)
        assert elements[0].get("id") == "cs101"
        namespaces = space.document("students.xml").root_element.namespaces
        assert "xlink" not in str(namespaces)
