"""Tests for linkbases and linkbase sets (including Figure 9's links.xml)."""

import pytest

from repro.xlink import (
    LINKBASE_ARCROLE,
    Linkbase,
    LinkbaseSet,
    Severity,
    UriSpace,
)
from repro.xmlcore import parse

XLINK = 'xmlns:xlink="http://www.w3.org/1999/xlink"'

# A linkbase in the shape of the paper's Figure 9.
LINKS_XML = f"""
<links {XLINK}>
  <linkset xlink:type="extended">
    <loc xlink:type="locator" xlink:href="picasso.xml" xlink:label="painter"/>
    <loc xlink:type="locator" xlink:href="guitar.xml" xlink:label="painting"/>
    <loc xlink:type="locator" xlink:href="avignon.xml" xlink:label="painting"/>
    <arc xlink:type="arc" xlink:from="painter" xlink:to="painting"
         xlink:arcrole="urn:museum:paints"/>
  </linkset>
</links>
"""


@pytest.fixture()
def space() -> UriSpace:
    space = UriSpace()
    space.add("picasso.xml", "<painter id='picasso'/>")
    space.add("guitar.xml", "<painting id='guitar'/>")
    space.add("avignon.xml", "<painting id='avignon'/>")
    space.add("links.xml", LINKS_XML)
    return space


class TestLinkbase:
    def test_links_harvested(self, space):
        lb = Linkbase.from_document("links.xml", space.document("links.xml"))
        assert len(lb.extended_links()) == 1

    def test_graph_edges(self, space):
        lb = Linkbase.from_document("links.xml", space.document("links.xml"))
        graph = lb.graph()
        assert len(graph.outgoing("picasso.xml")) == 2

    def test_relative_hrefs_normalized_against_linkbase_uri(self):
        space = UriSpace()
        space.add("museum/links.xml", LINKS_XML)
        lb = Linkbase.from_document(
            "museum/links.xml", space.document("museum/links.xml")
        )
        graph = lb.graph()
        assert len(graph.outgoing("museum/picasso.xml")) == 2
        assert graph.outgoing("picasso.xml") == []

    def test_validation_clean(self, space):
        lb = Linkbase.from_document("links.xml", space.document("links.xml"))
        assert [i for i in lb.validate() if i.severity is Severity.ERROR] == []

    def test_validation_reports_bad_arc(self):
        bad = f"""
        <links {XLINK}>
          <set xlink:type="extended">
            <loc xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>
            <arc xlink:type="arc" xlink:from="a" xlink:to="ghost"/>
          </set>
        </links>"""
        lb = Linkbase.from_document("bad.xml", parse(bad))
        errors = [i for i in lb.validate() if i.severity is Severity.ERROR]
        assert len(errors) == 1
        assert "ghost" in errors[0].message


class TestLinkbaseSet:
    def test_load_builds_merged_graph(self, space):
        lbs = LinkbaseSet(space)
        lbs.load("links.xml")
        assert len(lbs.graph()) == 2

    def test_linkbase_chaining_via_arcrole(self, space):
        chain = f"""
        <links {XLINK}>
          <more xlink:type="simple" xlink:href="links.xml"
                xlink:arcrole="{LINKBASE_ARCROLE}"/>
        </links>"""
        space.add("chain.xml", chain)
        lbs = LinkbaseSet(space)
        lbs.load("chain.xml")
        assert {lb.uri for lb in lbs.linkbases} == {"chain.xml", "links.xml"}
        assert len(lbs.graph()) == 2

    def test_chaining_through_extended_arc(self, space):
        chain = f"""
        <links {XLINK}>
          <set xlink:type="extended">
            <loc xlink:type="locator" xlink:href="start.xml" xlink:label="here"/>
            <loc xlink:type="locator" xlink:href="links.xml" xlink:label="lb"/>
            <arc xlink:type="arc" xlink:from="here" xlink:to="lb"
                 xlink:arcrole="{LINKBASE_ARCROLE}"/>
          </set>
        </links>"""
        space.add("chain.xml", chain)
        lbs = LinkbaseSet(space)
        lbs.load("chain.xml")
        assert any(lb.uri == "links.xml" for lb in lbs.linkbases)

    def test_cyclic_chains_terminate(self, space):
        a = f"""<l {XLINK}><x xlink:type="simple" xlink:href="b.xml"
                 xlink:arcrole="{LINKBASE_ARCROLE}"/></l>"""
        b = f"""<l {XLINK}><x xlink:type="simple" xlink:href="a.xml"
                 xlink:arcrole="{LINKBASE_ARCROLE}"/></l>"""
        space.add("a.xml", a)
        space.add("b.xml", b)
        lbs = LinkbaseSet(space)
        lbs.load("a.xml")
        assert {lb.uri for lb in lbs.linkbases} == {"a.xml", "b.xml"}

    def test_no_follow(self, space):
        chain = f"""
        <links {XLINK}>
          <more xlink:type="simple" xlink:href="links.xml"
                xlink:arcrole="{LINKBASE_ARCROLE}"/>
        </links>"""
        space.add("chain.xml", chain)
        lbs = LinkbaseSet(space)
        lbs.load("chain.xml", follow=False)
        assert len(lbs.linkbases) == 1

    def test_set_validation_aggregates(self, space):
        lbs = LinkbaseSet(space)
        lbs.load("links.xml")
        assert [i for i in lbs.validate() if i.severity is Severity.ERROR] == []
