#!/usr/bin/env python3
"""Section 2's museum walk: *Next* depends on how you arrived.

Reach Picasso's *Guitar* through its author and Next is another Picasso;
reach it through the cubism movement and Next is a Braque.  Same node, two
navigational contexts, two different information spaces.

Run:  python examples/context_navigation.py
"""

from repro.baselines import museum_fixture
from repro.navigation import NavigationSession


def walk(session: NavigationSession, label: str) -> None:
    print(f"\n{label}")
    print("  at:", session.position.describe())
    while True:
        try:
            position = session.next()
        except Exception as exc:
            print("  (end of context:", exc, ")")
            break
        print("  next ->", position.describe())


def main() -> None:
    fixture = museum_fixture()
    contexts = fixture.contexts()
    guitar = fixture.painting_node("guitar")

    via_author = NavigationSession(fixture.nav)
    via_author.visit(guitar, contexts["by-painter:picasso"])
    walk(via_author, "arrived via the author (by-painter:picasso):")

    via_movement = NavigationSession(fixture.nav)
    via_movement.visit(guitar, contexts["by-movement:cubism"])
    walk(via_movement, "arrived via the movement (by-movement:cubism):")

    # History restores the context too: back() then next() repeats the walk.
    via_movement.back()
    print("\nafter back():", via_movement.position.describe())
    print("next() again ->", via_movement.next().describe())

    # Leaving through a link abandons the context entirely.
    session = NavigationSession(fixture.nav)
    session.visit(guitar, contexts["by-painter:picasso"])
    position = session.follow("painted_by")
    print("\nfollow painted_by ->", position.describe())
    try:
        session.next()
    except Exception as exc:
        print("next() without a context fails, as it should:", exc)


if __name__ == "__main__":
    main()
