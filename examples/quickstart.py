#!/usr/bin/env python3
"""Quickstart: conceptual model → navigation spec → woven site, in a minute.

Builds a tiny library application (not the museum, to show the machinery is
generic), defines navigation *separately* as a spec, weaves it in, and
browses the result.

Run:  python examples/quickstart.py
"""

from repro.baselines.museum_data import MuseumFixture
from repro.core import NavigationSpec, build_plain_site, build_woven_site
from repro.hypermedia import (
    ConceptualSchema,
    ContextFamily,
    InstanceStore,
    LinkClass,
    NavigationalSchema,
    NodeClass,
    group_by_attribute,
)
from repro.navigation import UserAgent


def build_library() -> MuseumFixture:
    """A small library domain: authors and books with genres."""
    conceptual = ConceptualSchema()
    conceptual.add_class("Author", [("name", str, True)])
    conceptual.add_class("Book", [("title", str, True), ("year", int), ("genre", str)])
    conceptual.add_relationship("writes", "Author", "Book", inverse="written_by")

    store = InstanceStore(conceptual)
    store.bulk_load(
        entities=[
            ("Author", "cervantes", {"name": "Miguel de Cervantes"}),
            ("Author", "garcia-marquez", {"name": "Gabriel Garcia Marquez"}),
            (
                "Book",
                "quijote",
                {"title": "Don Quijote", "year": 1605, "genre": "novel"},
            ),
            (
                "Book",
                "novelas",
                {
                    "title": "Novelas Ejemplares",
                    "year": 1613,
                    "genre": "short-stories",
                },
            ),
            (
                "Book",
                "soledad",
                {"title": "Cien Anos de Soledad", "year": 1967, "genre": "novel"},
            ),
        ],
        links=[
            (("Author", "cervantes"), "writes", ("Book", "quijote")),
            (("Author", "cervantes"), "writes", ("Book", "novelas")),
            (("Author", "garcia-marquez"), "writes", ("Book", "soledad")),
        ],
    )

    nav = NavigationalSchema(conceptual)
    author_node = nav.add_node_class(NodeClass("AuthorNode", "Author").view("name"))
    book_node = nav.add_node_class(
        NodeClass("BookNode", "Book").view("title").view("year").view("genre")
    )
    nav.add_link_class(
        LinkClass("writes", "writes", author_node, book_node, title_attribute="title")
    )
    nav.add_link_class(
        LinkClass(
            "written_by", "written_by", book_node, author_node, title_attribute="name"
        )
    )
    nav.add_context_family(
        ContextFamily(
            name="by-genre",
            node_class=book_node,
            partition=group_by_attribute("Book", "genre"),
            order_key=lambda e: e.get("year") or 0,
        )
    )
    return MuseumFixture(conceptual=conceptual, store=store, nav=nav)


def main() -> None:
    fixture = build_library()

    # 1. The base program alone: a site with zero navigation.
    plain = build_plain_site(fixture)
    anchors = sum(len(p.anchors()) for p in plain.pages())
    print(f"plain build: {len(plain)} pages, {anchors} anchors (content only)")

    # 2. Navigation, defined separately, as one artifact.
    spec = (
        NavigationSpec()
        .set_access("by-genre", "indexed-guided-tour", label_attribute="title")
        .expose("BookNode", "written_by")
        .expose("AuthorNode", "writes")
        .index_on_home("AuthorNode")
    )
    print("\nthe navigation artifact:")
    print(spec.to_text())

    # 3. Weave and browse.
    site = build_woven_site(fixture, spec)
    agent = UserAgent(site.provider())
    agent.open("index.html")
    agent.click("Miguel de Cervantes")
    page = agent.click("Don Quijote")
    print(f"now at {page.uri}; anchors: {[(a.label, a.rel) for a in page.anchors]}")
    print(f"dangling links: {site.check_links() or 'none'}")


if __name__ == "__main__":
    main()
