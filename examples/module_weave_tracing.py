#!/usr/bin/env python3
"""Module-function weaving: tracing and retry over the XML substrate.

Class members are not the only join points worth advising — the paper's
parsing/resolution pipeline is plain module-level functions
(``xmlcore.parser.parse``, ``xlink.resolver.resolve_uri``), and this
example weaves aspects over them with the unified ``runtime.weave()``
surface:

- **Act 1** traces both functions with one *generator advice* body
  (aspectlib's protocol: ``yield proceed`` runs the original, ``yield
  return_(value)`` finishes the call), showing dotted
  ``package.module.function`` signatures in the trace.
- **Act 2** composes two module deployments on one shadow: a
  fault-injection aspect beneath a retry aspect, whose single generator
  body catches the injected parse error across the ``yield`` and
  proceeds again — the retry loop the split before/around/after kinds
  cannot express in one piece.
- **Act 3** shows transactional rollback: an exception inside the
  ``with runtime.weave(...)`` block rolls the module deployment back, so
  the module global is the original function again afterwards.

Calls must go *through the module attribute* (``parser.parse``): weaving
rebinds the module global, so a ``from ... import parse`` alias taken
before the weave keeps pointing at the original.

Run:  python examples/module_weave_tracing.py
"""

import repro.xlink.resolver as resolver
import repro.xmlcore.parser as parser
from repro.aop import Aspect, WeaverRuntime, execution, generator, proceed, return_
from repro.xmlcore.errors import XmlSyntaxError

PAINTING_XML = "<painting id='guitar'><title>The Old Guitarist</title></painting>"


class ModuleTracing(Aspect):
    """One generator body = before + around + after, over module functions."""

    def __init__(self) -> None:
        self.trace: list[str] = []

    @generator(execution("parser.parse") | execution("resolver.resolve_uri"))
    def trace_call(self, jp):
        self.trace.append(f"-> {jp.signature}{jp.args!r}")
        result = yield proceed                  # run the original, jp args
        self.trace.append(f"<- {jp.signature}")
        yield return_(result)


class ParseFaultInjection(Aspect):
    """Fail the first *failures* parses — the flaky dependency stand-in."""

    def __init__(self, failures: int) -> None:
        self.remaining = failures

    @generator(execution("parser.parse"))
    def inject(self, jp):
        if self.remaining > 0:
            self.remaining -= 1
            raise XmlSyntaxError("injected transient parse fault")
        result = yield proceed
        yield return_(result)


class ParseRetry(Aspect):
    """Retry transient parse faults: one body, multiple proceeds."""

    def __init__(self, attempts: int = 3) -> None:
        self.attempts = attempts
        self.retries = 0

    @generator(execution("parser.parse"))
    def retry(self, jp):
        for _ in range(self.attempts - 1):
            try:
                result = yield proceed
            except XmlSyntaxError:
                self.retries += 1
                continue
            yield return_(result)
        result = yield proceed                   # last attempt propagates
        yield return_(result)


def main() -> None:
    runtime = WeaverRuntime("module-weave")

    print("-- Act 1: tracing woven over module functions --")
    tracing = ModuleTracing()
    with runtime.weave([parser.parse, resolver.resolve_uri], tracing):
        doc = parser.parse(PAINTING_XML)
        href = resolver.resolve_uri("museum/index.xml", "../links.xml")
    print(f"parsed <{doc.root_element.name}>, resolved to {href!r}")
    for line in tracing.trace:
        print(f"  {line}")
    assert parser.parse(PAINTING_XML)  # woven wrapper is gone
    assert len(tracing.trace) == 2 * 2, "advice ran after undeploy?"

    print("\n-- Act 2: retry above fault injection, same module shadow --")
    faults = ParseFaultInjection(failures=2)
    retry = ParseRetry()
    # Deploy order matters: the later weave wraps the earlier one, so the
    # retry generator's `yield proceed` re-enters the fault injector.
    with runtime.weave(parser.parse, faults):
        with runtime.weave(parser.parse, retry):
            doc = parser.parse(PAINTING_XML)
    print(f"parsed <{doc.root_element.name}> after {retry.retries} injected fault(s)")
    assert retry.retries == 2

    print("\n-- Act 3: a raising block rolls the module weave back --")
    original = parser.parse
    try:
        with runtime.weave(parser.parse, ModuleTracing()):
            assert parser.parse is not original  # rebound to the wrapper
            raise RuntimeError("deployment abandoned mid-flight")
    except RuntimeError:
        pass
    assert parser.parse is original, "rollback must restore the module global"
    print(f"parser.parse is the original again: {parser.parse is original}")

    print("\nwoven sites while nothing is deployed:", runtime.woven_sites())


if __name__ == "__main__":
    main()
