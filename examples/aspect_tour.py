#!/usr/bin/env python3
"""A tour of the AOP substrate: the mechanisms of the paper's Figure 1.

Shows, on a plain banking toy, everything the navigation aspect relies on:
pointcuts (textual DSL), the five advice kinds, cflow residues, field join
points, introductions, and reversible deployment.

Run:  python examples/aspect_tour.py
"""

from repro.aop import (
    Aspect,
    Introduction,
    WeaverRuntime,
    after_returning,
    after_throwing,
    around,
    before,
)


class Account:
    def __init__(self, owner: str, balance: int = 0):
        self.owner = owner
        self.balance = balance

    def deposit(self, amount: int) -> int:
        self.balance = self.balance + amount
        return self.balance

    def withdraw(self, amount: int) -> int:
        if amount > self.balance:
            raise ValueError("insufficient funds")
        self.balance = self.balance - amount
        return self.balance

    def transfer(self, other: "Account", amount: int) -> None:
        self.withdraw(amount)
        other.deposit(amount)


class Auditing(Aspect):
    """Crosscutting concern #1: an audit trail, kept out of Account."""

    def __init__(self):
        self.trail: list[str] = []

    @before("execution(Account.deposit) || execution(Account.withdraw)")
    def note(self, jp):
        self.trail.append(f"{jp.name}({jp.args[0]}) on {jp.target.owner}")

    @after_throwing("execution(Account.withdraw)")
    def note_failure(self, jp):
        self.trail.append(f"DENIED withdraw on {jp.target.owner}: {jp.result}")

    # Only inner movements that happen as part of a transfer:
    @after_returning(
        "execution(Account.deposit) && cflowbelow(execution(Account.transfer))"
    )
    def note_transfer_leg(self, jp):
        self.trail.append(f"  (as a transfer leg -> balance {jp.result})")


class Limits(Aspect):
    """Crosscutting concern #2: policy, applied around the join point."""

    order = -10  # outermost

    @around("execution(Account.withdraw)")
    def cap(self, jp):
        (amount,) = jp.args
        if amount > 500:
            print(f"  [limits] capping withdrawal {amount} -> 500")
            return jp.proceed(500)
        return jp.proceed()


class Anchors(Aspect):
    """Introductions: grafting members onto the base class."""

    @before("execution(Account.deposit)")
    def _noop(self, jp):
        pass

    def introductions(self):
        return [
            Introduction(
                "Account", "as_anchor", lambda self: f"account/{self.owner}.html"
            )
        ]


def main() -> None:
    runtime = WeaverRuntime("tour")
    audit = Auditing()
    alice, bob = Account("alice", 1000), Account("bob", 100)

    with runtime.weave(Account, audit), runtime.weave(
        Account, Limits()
    ), runtime.weave(Account, Anchors()):
        alice.deposit(200)
        alice.withdraw(900)           # capped to 500 by Limits
        alice.transfer(bob, 50)
        try:
            bob.withdraw(10_000)
        except ValueError:
            pass
        print("introduced member:", alice.as_anchor())

    print("\naudit trail (collected by the aspect, invisible to Account):")
    for line in audit.trail:
        print(" ", line)

    print("\nafter undeploy, Account is its old self again:")
    print("  has as_anchor?", hasattr(Account, "as_anchor"))
    alice.withdraw(600)  # over the old cap, and no advice to stop it
    print("  uncapped withdraw ->", alice.balance)


if __name__ == "__main__":
    main()
