#!/usr/bin/env python3
"""The paper's full story: the museum, the change request, the change cost.

Act 1 — the site ships with an **Index** access structure (Figure 3).
Act 2 — the customer also wants painting→painting navigation: switch to an
**Indexed Guided Tour** (Figure 4).
Act 3 — apply the change under all three architectures and compare what a
developer must edit (the paper's "arduous and tedious work", quantified).

Run:  python examples/museum_change_request.py
"""

from repro.baselines import TangledMuseumSite, museum_fixture
from repro.metrics import all_impacts, format_table
from repro.web import diff_builds, unified_diff


def main() -> None:
    fixture = museum_fixture()

    # Act 1 & 2: the tangled site, before and after the change request.
    before = TangledMuseumSite(fixture, "index").build()
    after = TangledMuseumSite(fixture, "indexed-guided-tour").build()

    before_text = {p.path: p.html for p in before.values()}
    after_text = {p.path: p.html for p in after.values()}
    impact = diff_builds(before_text, after_text)
    print("tangled change:", impact.summary())
    print("pages touched:", ", ".join(impact.touched_paths()))

    print("\nthe two bold lines of Figure 4, in one of the nine pages:")
    print(unified_diff(before_text, after_text, "painting/guitar.html", context=1))

    # Act 3: the same change under each architecture.
    print()
    print(
        format_table(
            [
                "approach",
                "authored files touched",
                "authored lines",
                "built files touched",
                "built lines",
            ],
            [impact.row() for impact in all_impacts(fixture)],
            title="Change impact: Index -> Indexed Guided Tour",
        )
    )
    print(
        "\nReading: in the tangled site the developer edits every painting "
        "page; with XLink they regenerate links.xml only; with the aspect "
        "they change one line of the navigation spec."
    )


if __name__ == "__main__":
    main()
