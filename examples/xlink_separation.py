#!/usr/bin/env python3
"""Figures 7–9: data in picasso.xml / avignon.xml, links in links.xml.

Exports the paper's three artifacts, prints them, loads them back through
the XLink processor and browses the site a linkbase-aware browser would
have shown (the browsers of 2002 could not; our pipeline can).

Run:  python examples/xlink_separation.py
"""

from repro.baselines import museum_fixture
from repro.core import (
    XLinkSiteBuilder,
    default_museum_spec,
    export_museum_space,
)
from repro.navigation import UserAgent
from repro.xlink import Linkbase
from repro.xmlcore import serialize


def main() -> None:
    fixture = museum_fixture()
    spec = default_museum_spec("indexed-guided-tour")
    space = export_museum_space(fixture, spec)

    print("Figure 7 — picasso.xml (data only, no links):")
    print(serialize(space.document("picasso.xml"), indent="  "))

    print("\nFigure 8 — avignon.xml (data only, no links):")
    print(serialize(space.document("avignon.xml"), indent="  "))

    print("\nFigure 9 — links.xml (abridged to the Picasso context):")
    linkbase_doc = space.document("links.xml")
    for link_el in linkbase_doc.root_element.child_elements():
        if link_el.get("{http://www.w3.org/1999/xlink}title") == "by-painter:picasso":
            print(serialize(link_el, indent="  "))
            break

    linkbase = Linkbase.from_document("links.xml", linkbase_doc)
    graph = linkbase.graph()
    print(f"\nlinkbase: {len(linkbase.extended_links())} extended links, "
          f"{len(graph)} traversals, issues: {linkbase.validate() or 'none'}")

    print("\ntraversals leaving guitar.xml:")
    for traversal in graph.outgoing("guitar.xml"):
        if traversal.start is not traversal.end:
            print(" ", traversal.describe())

    site = XLinkSiteBuilder(space).build()
    agent = UserAgent(site.provider())
    agent.open("guitar.html")
    print("\nbrowsing: at guitar.html, Next ->", agent.follow_rel("next").uri)
    print("trail:", " -> ".join(agent.trail()))


if __name__ == "__main__":
    main()
