#!/usr/bin/env python3
"""Live weaving: reconfigure navigation while a user is browsing.

Uses the persistent :class:`NavigationWeaver` and its lazy page provider —
pages render on demand through the deployed aspect, so swapping the
navigation spec between two requests changes what the *next* page shows.
The landmark aspect is composed on top, showing two navigation concerns
woven independently.

The second act serves **two audiences at once** from one live process:
an :class:`AudienceServer` weaves one renderer *instance* per audience
(instance-scoped deployments over the shared ``PageRenderer`` class), so
a visitor browsing the guided tour and a curator browsing the bare index
get different navigation from the same base program, concurrently — and
reconfiguring one audience leaves the other's pages untouched.

Run:  python examples/live_weaving.py
"""

from repro.aop import WeaverRuntime
from repro.baselines import museum_fixture
from repro.core import (
    LandmarkAspect,
    NavigationWeaver,
    PageRenderer,
    default_museum_landmarks,
    default_museum_spec,
)
from repro.navigation import AudienceBundle, AudienceServer, UserAgent


def main() -> None:
    fixture = museum_fixture()
    weaver = NavigationWeaver(fixture, default_museum_spec("index"))

    # Deploy the landmark aspect FIRST: reconfigure() re-weaves the
    # navigation aspect, and weaving unwinds LIFO — the reconfigured
    # deployment must sit on top of the stack.
    landmark_weaver = WeaverRuntime("landmarks")
    landmark_weaver.deploy(
        LandmarkAspect(default_museum_landmarks()), [PageRenderer]
    )
    try:
        with weaver:
            agent = UserAgent(weaver.provider())
            page = agent.open("PaintingNode/guitar.html")
            print("with the Index spec, Guitar offers:")
            for anchor in page.anchors:
                print(f"  [{anchor.rel:9}] {anchor.label}")
            print("  (no Next/Previous yet)")

            print("\n-- the customer calls: reconfigure, no page edited --\n")
            weaver.reconfigure(default_museum_spec("indexed-guided-tour"))

            page = agent.open("PaintingNode/guitar.html")
            print("after reconfigure, the same request shows:")
            for anchor in page.anchors:
                print(f"  [{anchor.rel:9}] {anchor.label}")

            print("\nbrowsing straight through the new tour:")
            print("  next ->", agent.follow_rel("next").uri)
            print("  home via landmark ->", agent.click("Museum home").uri)
    finally:
        landmark_weaver.undeploy_all()

    print("\nafter undeploy, the base program renders no anchors:")
    plain = PageRenderer(fixture).render_node(fixture.painting_node("guitar"))
    print("  anchors:", plain.anchors())

    serve_two_audiences(fixture)


def serve_two_audiences(fixture) -> None:
    """Two audiences, one live process, one woven renderer class."""
    print("\n== serving two audiences live (instance-scoped weaving) ==\n")
    bundles = [
        AudienceBundle("visitor", ("index", "guided-tour")),
        AudienceBundle("curator", ("index",)),
    ]
    with AudienceServer(fixture, bundles) as server:
        visitor = UserAgent(server.provider("visitor"))
        curator = UserAgent(server.provider("curator"))

        # Interleaved requests; each audience sees only its own stack.
        visitor_page = visitor.open("PaintingNode/guitar.html")
        curator_page = curator.open("PaintingNode/guitar.html")
        print("visitor sees Guitar with:")
        for anchor in visitor_page.anchors:
            print(f"  [{anchor.rel:9}] {anchor.label}")
        print("curator sees the same page with:")
        for anchor in curator_page.anchors:
            print(f"  [{anchor.rel:9}] {anchor.label}")

        print("\n-- the curators want the tour too; visitors unchanged --\n")
        server.reconfigure("curator", ("indexed-guided-tour",))
        print("curator's next request follows the tour:")
        print("  next ->", curator.open("PaintingNode/guitar.html").uri, end="")
        print(" ->", curator.follow_rel("next").uri)
        print("visitor still sees", len(visitor.open(visitor_page.uri).anchors),
              "anchors (unchanged)")

    plain = PageRenderer(fixture).render_node(fixture.painting_node("guitar"))
    print("\nserver closed; the base program renders no anchors:", plain.anchors())


if __name__ == "__main__":
    main()
