#!/usr/bin/env python3
"""Live weaving: reconfigure navigation while a user is browsing.

Uses the persistent :class:`NavigationWeaver` and its lazy page provider —
pages render on demand through the deployed aspect, so swapping the
navigation spec between two requests changes what the *next* page shows.
The landmark aspect is composed on top, showing two navigation concerns
woven independently.

Run:  python examples/live_weaving.py
"""

from repro.aop import WeaverRuntime
from repro.baselines import museum_fixture
from repro.core import (
    LandmarkAspect,
    NavigationWeaver,
    PageRenderer,
    default_museum_landmarks,
    default_museum_spec,
)
from repro.navigation import UserAgent


def main() -> None:
    fixture = museum_fixture()
    weaver = NavigationWeaver(fixture, default_museum_spec("index"))

    # Deploy the landmark aspect FIRST: reconfigure() re-weaves the
    # navigation aspect, and weaving unwinds LIFO — the reconfigured
    # deployment must sit on top of the stack.
    landmark_weaver = WeaverRuntime("landmarks")
    landmark_weaver.deploy(
        LandmarkAspect(default_museum_landmarks()), [PageRenderer]
    )
    try:
        with weaver:
            agent = UserAgent(weaver.provider())
            page = agent.open("PaintingNode/guitar.html")
            print("with the Index spec, Guitar offers:")
            for anchor in page.anchors:
                print(f"  [{anchor.rel:9}] {anchor.label}")
            print("  (no Next/Previous yet)")

            print("\n-- the customer calls: reconfigure, no page edited --\n")
            weaver.reconfigure(default_museum_spec("indexed-guided-tour"))

            page = agent.open("PaintingNode/guitar.html")
            print("after reconfigure, the same request shows:")
            for anchor in page.anchors:
                print(f"  [{anchor.rel:9}] {anchor.label}")

            print("\nbrowsing straight through the new tour:")
            print("  next ->", agent.follow_rel("next").uri)
            print("  home via landmark ->", agent.click("Museum home").uri)
    finally:
        landmark_weaver.undeploy_all()

    print("\nafter undeploy, the base program renders no anchors:")
    plain = PageRenderer(fixture).render_node(fixture.painting_node("guitar"))
    print("  anchors:", plain.anchors())


if __name__ == "__main__":
    main()
