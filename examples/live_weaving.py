#!/usr/bin/env python3
"""Live weaving: reconfigure navigation while a user is browsing.

Uses the persistent :class:`NavigationWeaver` and its lazy page provider —
pages render on demand through the deployed aspect, so swapping the
navigation spec between two requests changes what the *next* page shows.
The landmark aspect is composed on top, showing two navigation concerns
woven independently.

The second act serves **two audiences at once** from one live process:
an :class:`AudienceServer` weaves one renderer *instance* per audience
(instance-scoped deployments over the shared ``PageRenderer`` class), so
a visitor browsing the guided tour and a curator browsing the bare index
get different navigation from the same base program, concurrently — and
reconfiguring one audience leaves the other's pages untouched.

The third act puts the whole thing behind **real HTTP**: a threaded WSGI
server over the audience server, driven here with ``urllib``.  Each
session gets its own scope tier (private renderer + breadcrumb trail),
and a live ``POST /-/reconfigure/curator`` changes only the curator's
next response.

Run:  python examples/live_weaving.py
"""

from repro.aop import WeaverRuntime
from repro.baselines import museum_fixture
from repro.core import (
    LandmarkAspect,
    NavigationWeaver,
    PageRenderer,
    default_museum_landmarks,
    default_museum_spec,
)
from repro.navigation import AudienceBundle, AudienceServer, UserAgent


def main() -> None:
    fixture = museum_fixture()
    weaver = NavigationWeaver(fixture, default_museum_spec("index"))

    # Deploy the landmark aspect FIRST: reconfigure() re-weaves the
    # navigation aspect, and weaving unwinds LIFO — the reconfigured
    # deployment must sit on top of the stack.
    landmark_weaver = WeaverRuntime("landmarks")
    landmark_weave = landmark_weaver.weave(
        [PageRenderer], LandmarkAspect(default_museum_landmarks())
    )
    try:
        with weaver:
            agent = UserAgent(weaver.provider())
            page = agent.open("PaintingNode/guitar.html")
            print("with the Index spec, Guitar offers:")
            for anchor in page.anchors:
                print(f"  [{anchor.rel:9}] {anchor.label}")
            print("  (no Next/Previous yet)")

            print("\n-- the customer calls: reconfigure, no page edited --\n")
            weaver.reconfigure(default_museum_spec("indexed-guided-tour"))

            page = agent.open("PaintingNode/guitar.html")
            print("after reconfigure, the same request shows:")
            for anchor in page.anchors:
                print(f"  [{anchor.rel:9}] {anchor.label}")

            print("\nbrowsing straight through the new tour:")
            print("  next ->", agent.follow_rel("next").uri)
            print("  home via landmark ->", agent.click("Museum home").uri)
    finally:
        landmark_weave.undeploy()

    print("\nafter undeploy, the base program renders no anchors:")
    plain = PageRenderer(fixture).render_node(fixture.painting_node("guitar"))
    print("  anchors:", plain.anchors())

    serve_two_audiences(fixture)


def serve_two_audiences(fixture) -> None:
    """Two audiences, one live process, one woven renderer class."""
    print("\n== serving two audiences live (instance-scoped weaving) ==\n")
    bundles = [
        AudienceBundle("visitor", ("index", "guided-tour")),
        AudienceBundle("curator", ("index",)),
    ]
    with AudienceServer(fixture, bundles) as server:
        visitor = UserAgent(server.provider("visitor"))
        curator = UserAgent(server.provider("curator"))

        # Interleaved requests; each audience sees only its own stack.
        visitor_page = visitor.open("PaintingNode/guitar.html")
        curator_page = curator.open("PaintingNode/guitar.html")
        print("visitor sees Guitar with:")
        for anchor in visitor_page.anchors:
            print(f"  [{anchor.rel:9}] {anchor.label}")
        print("curator sees the same page with:")
        for anchor in curator_page.anchors:
            print(f"  [{anchor.rel:9}] {anchor.label}")

        print("\n-- the curators want the tour too; visitors unchanged --\n")
        server.reconfigure("curator", ("indexed-guided-tour",))
        print("curator's next request follows the tour:")
        print("  next ->", curator.open("PaintingNode/guitar.html").uri, end="")
        print(" ->", curator.follow_rel("next").uri)
        print("visitor still sees", len(visitor.open(visitor_page.uri).anchors),
              "anchors (unchanged)")

    plain = PageRenderer(fixture).render_node(fixture.painting_node("guitar"))
    print("\nserver closed; the base program renders no anchors:", plain.anchors())

    serve_over_http(fixture)


def serve_over_http(fixture) -> None:
    """Act three: the same arrangement behind a real HTTP server."""
    import threading
    import urllib.request

    from repro.navigation import NavigationApp
    from repro.navigation.http import make_wsgi_server

    print("\n== serving over HTTP (threaded WSGI, per-session scopes) ==\n")
    bundles = [
        AudienceBundle("visitor", ("index", "guided-tour")),
        AudienceBundle("curator", ("index",)),
    ]
    with AudienceServer(fixture, bundles) as server:
        app = NavigationApp(server)
        httpd = make_wsgi_server(app)  # port 0: ephemeral
        base = "http://127.0.0.1:%d" % httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        print("serving at", base)

        def get(path, session):
            request = urllib.request.Request(base + path)
            request.add_header("X-Repro-Session", session)
            with urllib.request.urlopen(request) as response:
                return response.read().decode("utf-8")

        page = "/visitor/PaintingNode/guitar.html"
        print("visitor GET", page, "->", 'rel="next"' in get(page, "alice"), "(tour)")
        page = "/curator/PaintingNode/guitar.html"
        print("curator GET", page, "->", 'rel="next"' in get(page, "bob"), "(tour)")

        print("\n-- POST /-/reconfigure/curator: indexed-guided-tour --\n")
        request = urllib.request.Request(
            base + "/-/reconfigure/curator",
            data=b"indexed-guided-tour",
            method="POST",
        )
        urllib.request.urlopen(request).read()
        print("curator GET", page, "->", 'rel="next"' in get(page, "bob"), "(tour)")
        get("/visitor/index.html", "alice")  # alice browses on; her trail grows
        visitor_page = get("/visitor/PaintingNode/guitar.html", "alice")
        print(
            "alice's second visit shows her own breadcrumb trail:",
            'class="breadcrumbs"' in visitor_page,
        )
        httpd.shutdown()
        httpd.server_close()
        app.close()


if __name__ == "__main__":
    main()
