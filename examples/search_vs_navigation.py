#!/usr/bin/env python3
"""Section 2's other point: not every link is navigation.

"We do not think that we are navigating when we push on one of these
specific links [result paging], since we are not moving from an
information space to another one.  These links are just a way to do
scrolling."

We model a search engine over the museum: result pages carry *paging*
links (rel=scroll) and *result* links (rel=entry).  The user agent can
tell them apart, and the navigation session only changes information
space when a result is followed.

Run:  python examples/search_vs_navigation.py
"""

from repro.baselines import museum_fixture
from repro.hypermedia.access import Anchor
from repro.navigation import UserAgent
from repro.web import (
    HtmlPage,
    StaticSite,
    anchor_element,
    heading,
    page_skeleton,
    paragraph,
)


def build_search_site(fixture, query: str, page_size: int = 3) -> StaticSite:
    """Result pages for *query* plus the painting pages they point at."""
    from repro.core import build_woven_site, default_museum_spec

    site = build_woven_site(fixture, default_museum_spec("index"))

    hits = [
        fixture.painting_node(e.entity_id)
        for e in fixture.store.all("Painting")
        if query.lower() in (e.get("title") or "").lower()
        or query.lower() in (e.get("movement") or "").lower()
    ]
    pages = [hits[i : i + page_size] for i in range(0, len(hits), page_size)] or [[]]
    for number, chunk in enumerate(pages, start=1):
        html, body = page_skeleton(f"Results for '{query}' (page {number})")
        body.append(heading(1, f"Results for '{query}'"))
        for node in chunk:
            body.append(
                paragraph(
                    anchor_element(
                        Anchor(node.get("title"), f"../{node.uri}", "entry")
                    )
                )
            )
        # The paging links at the bottom: scrolling, not navigation.
        paging = [
            Anchor(str(n), f"results-{n}.html", "scroll")
            for n in range(1, len(pages) + 1)
            if n != number
        ]
        for anchor in paging:
            body.append(paragraph(anchor_element(anchor)))
        site.add(HtmlPage(f"search/results-{number}.html", html))
    return site


def main() -> None:
    fixture = museum_fixture()
    site = build_search_site(fixture, query="cubism", page_size=3)

    agent = UserAgent(site.provider())
    page = agent.open("search/results-1.html")
    results = page.anchors_with_rel("entry")
    scrolls = page.anchors_with_rel("scroll")
    print(f"page 1: {len(results)} results, {len(scrolls)} paging links")

    print("\npaging to results-2 (scrolling — same information space):")
    page2 = agent.follow_rel("scroll")
    print("  at", page2.uri, "- still the same result set for 'cubism'")

    print("\nfollowing a result (navigation — a new information space):")
    target = page2.anchors_with_rel("entry")[0]
    painting = agent.click(target.label)
    print("  at", painting.uri, "with its own navigation:",
          [(a.label, a.rel) for a in painting.anchors])

    print("\ntrail:", " -> ".join(agent.trail()))


if __name__ == "__main__":
    main()
