"""F6 — Figure 6: what the separated architecture costs at build time.

Figure 6 proposes weaving navigation into the basic functionality.  The
price of that proposal is build-time composition work; these benchmarks
compare whole-site builds under each architecture.

Expected shape: woven and XLink builds cost a constant factor over the
tangled build (they do strictly more work: render content, compute
anchors, compose), and the factor does not grow with site size.
"""

import pytest

from repro.baselines import TangledMuseumSite, synthetic_museum
from repro.core import (
    build_plain_site,
    build_woven_site,
    build_xlink_site,
    default_museum_spec,
)

SIZES = {"small": (5, 5), "medium": (10, 20)}


@pytest.fixture(scope="module", params=sorted(SIZES))
def sized_fixture(request):
    painters, paintings = SIZES[request.param]
    return synthetic_museum(painters, paintings)


def test_tangled_build(benchmark, sized_fixture):
    pages = benchmark(lambda: TangledMuseumSite(sized_fixture, "index").build())
    assert pages


def test_plain_build_base_program_only(benchmark, sized_fixture):
    site = benchmark(build_plain_site, sized_fixture)
    assert len(site) > 1


def test_woven_build(benchmark, sized_fixture):
    spec = default_museum_spec("index")
    site = benchmark(build_woven_site, sized_fixture, spec)
    assert sum(len(p.anchors()) for p in site.pages()) > 0


def test_woven_build_igt(benchmark, sized_fixture):
    spec = default_museum_spec("indexed-guided-tour")
    site = benchmark(build_woven_site, sized_fixture, spec)
    assert site.check_links() == []


def test_xlink_build(benchmark, sized_fixture):
    spec = default_museum_spec("index")
    site = benchmark(build_xlink_site, sized_fixture, spec)
    assert len(site) > 1


def test_weaving_overhead_is_bounded(paper_fixture):
    """The aspect's own overhead: woven build vs plain build, same pages.

    Not a timing assertion by wall clock (machines vary) but a sanity
    bound: weaving the paper museum must cost less than 20x the plain
    build, i.e. the mechanism is a constant factor, not an asymptotic one.
    """
    import time

    def clock(fn, repeat=5):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    plain = clock(lambda: build_plain_site(paper_fixture))
    woven = clock(
        lambda: build_woven_site(paper_fixture, default_museum_spec("index"))
    )
    assert woven < plain * 20
