"""F3/F4 — Figures 3–4: the tangled pages and what the change request costs.

Regenerates the Guitar page both ways and measures the Index → Indexed
Guided Tour edit across museum sizes.  Expected shape (the paper's
argument): files touched grows linearly with the number of paintings in
the tangled architecture — "this isn't the only page we have to modify".
"""

import pytest

from repro.baselines import TangledMuseumSite, synthetic_museum
from repro.web import diff_builds


def build_texts(fixture, access):
    return {p.path: p.html for p in TangledMuseumSite(fixture, access).build().values()}


def test_figure_3_guitar_page_regenerated(paper_fixture):
    """The Figure 3 artifact: Guitar with the Index access structure."""
    pages = TangledMuseumSite(paper_fixture, "index").build()
    guitar = pages["painting/guitar.html"]
    assert "<h1>Guitar</h1>" in guitar.html
    assert "Guernica" in guitar.html            # the embedded index
    assert 'rel="next"' not in guitar.html      # and no tour yet


def test_figure_4_guitar_page_regenerated(paper_fixture):
    """The Figure 4 artifact: the same page with the two bold lines."""
    pages = TangledMuseumSite(paper_fixture, "indexed-guided-tour").build()
    guitar = pages["painting/guitar.html"]
    assert 'rel="next"' in guitar.html and 'rel="prev"' in guitar.html


def test_figure_4_adds_at_most_two_lines_per_page(paper_fixture):
    """The paper: 'they seem only two lines of HTML code' — per page."""
    impact = diff_builds(
        build_texts(paper_fixture, "index"),
        build_texts(paper_fixture, "indexed-guided-tour"),
    )
    for delta in impact.deltas:
        assert delta.lines_added <= 2
        assert delta.lines_removed == 0


def test_tangled_build_paper_museum(benchmark, paper_fixture):
    pages = benchmark(lambda: TangledMuseumSite(paper_fixture, "index").build())
    assert len(pages) == 14


@pytest.mark.parametrize("paintings", [5, 20, 50])
def test_tangled_build_scales(benchmark, paintings):
    fixture = synthetic_museum(4, paintings)
    pages = benchmark(lambda: TangledMuseumSite(fixture, "index").build())
    assert len(pages) == 1 + 4 + 4 * paintings


@pytest.mark.parametrize("paintings", [5, 20, 50])
def test_change_impact_grows_with_context_size(benchmark, paintings):
    """Files touched == number of paintings: O(context size)."""
    fixture = synthetic_museum(4, paintings)

    def measure():
        return diff_builds(
            build_texts(fixture, "index"),
            build_texts(fixture, "indexed-guided-tour"),
        )

    impact = benchmark(measure)
    assert impact.files_touched == 4 * paintings
