"""F1 — Figure 1: the cost of the aspect-oriented mechanism itself.

The paper's Figure 1 diagrams the weaver composing basic functionality
with aspects.  These benchmarks price that mechanism: advice dispatch
against a plain call, deployment/undeployment cycles, pointcut matching,
and the cflow residue (the most expensive pointcut).

Expected shape: woven calls cost a constant factor over plain calls
(microseconds, not asymptotics); deployment is linear in the number of
matched shadows.
"""

import pytest

from repro.aop import Aspect, Weaver, around, before, execution
from repro.aop.joinpoint import JoinPointKind


class Node:
    def render(self) -> int:
        return sum(range(25))

    def helper(self) -> int:
        return self.render()


class BeforeAspect(Aspect):
    def __init__(self):
        self.count = 0

    @before("execution(Node.render)")
    def note(self, jp):
        self.count += 1


class AroundAspect(Aspect):
    @around("execution(Node.render)")
    def wrap(self, jp):
        return jp.proceed()


class CflowAspect(Aspect):
    def __init__(self):
        self.count = 0

    @before("execution(Node.render) && cflowbelow(execution(Node.helper))")
    def note(self, jp):
        self.count += 1


def test_baseline_plain_call(benchmark):
    node = Node()
    benchmark(node.render)


def test_woven_call_with_before_advice(benchmark):
    weaver = Weaver()
    deployment = weaver.deploy(BeforeAspect(), [Node])
    node = Node()
    try:
        benchmark(node.render)
    finally:
        weaver.undeploy(deployment)


def test_woven_call_with_around_advice(benchmark):
    weaver = Weaver()
    deployment = weaver.deploy(AroundAspect(), [Node])
    node = Node()
    try:
        benchmark(node.render)
    finally:
        weaver.undeploy(deployment)


def test_woven_call_with_cflow_residue(benchmark):
    weaver = Weaver()
    deployment = weaver.deploy(CflowAspect(), [Node])
    node = Node()
    try:
        benchmark(node.helper)
    finally:
        weaver.undeploy(deployment)


def test_deploy_undeploy_cycle(benchmark):
    weaver = Weaver()
    aspect = BeforeAspect()

    def cycle():
        deployment = weaver.deploy(aspect, [Node])
        weaver.undeploy(deployment)

    benchmark(cycle)


def test_pointcut_shadow_matching(benchmark):
    pointcut = execution("Node.*") & ~execution("*.helper")

    def match_all():
        hits = 0
        for name in ("render", "helper"):
            if pointcut.matches_shadow(Node, name, JoinPointKind.METHOD_EXECUTION):
                hits += 1
        return hits

    assert match_all() == 1  # render matches, helper is excluded
    benchmark(match_all)


@pytest.mark.parametrize("calls", [100, 1000])
def test_advised_call_burst(benchmark, calls):
    """Amortized cost of n advised calls (the site build's inner loop)."""
    weaver = Weaver()
    aspect = BeforeAspect()
    deployment = weaver.deploy(aspect, [Node])
    node = Node()

    def burst():
        for _ in range(calls):
            node.render()

    try:
        benchmark(burst)
    finally:
        weaver.undeploy(deployment)
