"""F5 — Figure 5: the implementation classes of the access structures.

Figure 5 contrasts the Index implementation classes with the Indexed
Guided Tour ones; here we price instantiating those classes and rendering
a whole context through them — construction, per-page anchors, and the
HTML materialization of the paper's node pages.
"""

import pytest

from repro.baselines import synthetic_museum
from repro.core import NavigationSpec, PageRenderer
from repro.hypermedia import Index, IndexedGuidedTour
from repro.web import nav_block


@pytest.fixture(scope="module")
def context_members():
    fixture = synthetic_museum(1, 50)
    spec = NavigationSpec().set_access("by-painter", "index", label_attribute="title")
    (context,) = spec.build_contexts(fixture).values()
    return fixture, context.members


def test_index_class_instantiation(benchmark):
    benchmark(lambda: Index(name="ctx", label_attribute="title"))


def test_indexed_guided_tour_class_instantiation(benchmark):
    """IGT builds its two delegates in __post_init__ — measurably heavier."""
    benchmark(lambda: IndexedGuidedTour(name="ctx", label_attribute="title"))


def test_render_context_through_index_classes(benchmark, context_members):
    _, members = context_members
    structure = Index(name="ctx", label_attribute="title")

    def render_all():
        return [nav_block(structure.anchors_on(node, members)) for node in members]

    blocks = benchmark(render_all)
    assert len(blocks) == len(members)


def test_render_context_through_igt_classes(benchmark, context_members):
    _, members = context_members
    structure = IndexedGuidedTour(name="ctx", label_attribute="title")

    def render_all():
        return [nav_block(structure.anchors_on(node, members)) for node in members]

    blocks = benchmark(render_all)
    assert len(blocks) == len(members)


def test_node_page_rendering(benchmark, context_members):
    """The base-program half of Figure 5: a node page without navigation."""
    fixture, members = context_members
    renderer = PageRenderer(fixture)
    page = benchmark(renderer.render_node, members[0])
    assert page.anchors() == []
