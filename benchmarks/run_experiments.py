#!/usr/bin/env python3
"""Regenerate every figure and table of the paper in one run.

This is the human-readable companion to the pytest-benchmark harness: it
prints the artifacts (Figures 3–4, 7–9), the derived tables (change
impact, scattering) and the scaling series the per-figure benches time.
EXPERIMENTS.md records this output as paper-vs-measured.

Run:  python benchmarks/run_experiments.py
"""

import time

from repro.baselines import TangledMuseumSite, museum_fixture, synthetic_museum
from repro.core import (
    build_plain_site,
    build_woven_site,
    build_xlink_site,
    default_museum_spec,
    export_museum_space,
    linkbase_text,
)
from repro.metrics import all_impacts, format_table, measure_scattering
from repro.web import diff_builds, unified_diff
from repro.xmlcore import serialize


def clock(fn, repeat=3):
    best = float("inf")
    result = None
    for __ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def section(title):
    print()
    print("#" * 70)
    print(f"# {title}")
    print("#" * 70)


def main() -> None:
    fixture = museum_fixture()

    # ---------------------------------------------------------------- F3/F4
    section("F3/F4 - Figures 3-4: the tangled Guitar page, before and after")
    before = {
        p.path: p.html for p in TangledMuseumSite(fixture, "index").build().values()
    }
    after = {
        p.path: p.html
        for p in TangledMuseumSite(fixture, "indexed-guided-tour").build().values()
    }
    print("\nFigure 3 (painting/guitar.html, Index):\n")
    print(before["painting/guitar.html"])
    print("\nFigure 4 delta (the two bold lines), per page:\n")
    print(unified_diff(before, after, "painting/guitar.html", context=0))
    impact = diff_builds(before, after)
    print(f"\ntangled change impact: {impact.summary()}")

    # ---------------------------------------------------------------- F7-F9
    section("F7-F9 - Figures 7-9: picasso.xml / avignon.xml / links.xml")
    space = export_museum_space(fixture, default_museum_spec("index"))
    print("\npicasso.xml:\n")
    print(serialize(space.document("picasso.xml"), indent="  "))
    print("\navignon.xml:\n")
    print(serialize(space.document("avignon.xml"), indent="  "))
    links = linkbase_text(fixture, default_museum_spec("index"))
    print(f"\nlinks.xml: {len(links.splitlines())} lines; first 16:\n")
    print("\n".join(links.splitlines()[:16]))

    # ------------------------------------------------------------------- T-C
    section("T-C - Change impact: Index -> Indexed Guided Tour, three ways")
    rows = [impact.row() for impact in all_impacts(fixture)]
    print()
    print(
        format_table(
            [
                "approach",
                "authored files",
                "authored lines",
                "built files",
                "built lines",
            ],
            rows,
        )
    )
    print("\nscaling the museum (tangled grows, separated stays O(1)):\n")
    scaling_rows = []
    for paintings in (5, 20, 50):
        big = synthetic_museum(4, paintings)
        impacts = {i.approach: i for i in all_impacts(big)}
        scaling_rows.append(
            (
                f"4x{paintings}",
                impacts["tangled"].authored.files_touched,
                impacts["xlink"].authored.files_touched,
                impacts["aspect"].authored.lines_changed,
            )
        )
    print(
        format_table(
            ["museum", "tangled files", "xlink files", "aspect lines"],
            scaling_rows,
        )
    )

    # ------------------------------------------------------------------- T-S
    section("T-S - Scattering of the navigation concern")
    tangled_report = measure_scattering(before)
    space_text = {
        uri: serialize(space.document(uri), indent="  ") for uri in space.uris()
    }
    xlink_report = measure_scattering(space_text)
    aspect_report = measure_scattering(
        {"navigation.spec": default_museum_spec("index").to_text()}
    )
    print()
    print(
        format_table(
            ["architecture", "files", "CDC", "tangled", "ratio", "nav LOC", "share"],
            [
                tangled_report.row("tangled pages"),
                xlink_report.row("xlink artifacts"),
                aspect_report.row("aspect artifacts"),
            ],
        )
    )
    print(
        f"\npure-navigation artifacts (xlink): {xlink_report.navigation_only_files()}"
    )

    # ------------------------------------------------------------------- F6
    section("F6 - Figure 6: build-time cost of the separation")
    plain_t, plain = clock(lambda: build_plain_site(fixture))
    woven_t, woven = clock(
        lambda: build_woven_site(fixture, default_museum_spec("index"))
    )
    xlink_t, xlink = clock(
        lambda: build_xlink_site(fixture, default_museum_spec("index"))
    )
    tangled_t, __ = clock(lambda: TangledMuseumSite(fixture, "index").build())
    print()
    print(
        format_table(
            ["build", "pages", "best time (ms)", "vs tangled", "vs plain base"],
            [
                ("tangled", 14, f"{tangled_t * 1e3:.1f}", "1.00x", "-"),
                ("plain (base only)", len(plain), f"{plain_t * 1e3:.1f}",
                 f"{plain_t / tangled_t:.2f}x", "1.00x"),
                ("woven (aspect)", len(woven), f"{woven_t * 1e3:.1f}",
                 f"{woven_t / tangled_t:.2f}x", f"{woven_t / plain_t:.2f}x"),
                ("xlink pipeline", len(xlink), f"{xlink_t * 1e3:.1f}",
                 f"{xlink_t / tangled_t:.2f}x", f"{xlink_t / plain_t:.2f}x"),
            ],
        )
    )
    print(
        "\n(the tangled generator concatenates strings while the separated"
        "\nbuilds construct and serialize DOM trees - 'vs plain base' is the"
        "\nseparation mechanism's own cost)"
    )

    # ------------------------------------------------------------------- F1
    section("F1 - Figure 1: the weaving mechanism's overhead")
    from repro.aop import Aspect, Weaver, before as before_advice

    class Probe:
        def step(self):
            return sum(range(25))

    class Noop(Aspect):
        @before_advice("execution(Probe.step)")
        def observe(self, jp):
            pass

    probe = Probe()
    base_t, __ = clock(lambda: [probe.step() for __ in range(10_000)])
    weaver = Weaver()
    deployment = weaver.deploy(Noop(), [Probe])
    woven_call_t, __ = clock(lambda: [probe.step() for __ in range(10_000)])
    weaver.undeploy(deployment)
    print(
        f"\n10k calls: plain {base_t * 1e3:.1f} ms, "
        f"advised {woven_call_t * 1e3:.1f} ms "
        f"({woven_call_t / base_t:.1f}x constant-factor overhead)"
    )

    # ------------------------------------------------------------------- F2
    section("F2 - Figure 2: access-structure scaling (anchors per page)")
    from repro.core import NavigationSpec
    from repro.hypermedia import GuidedTour, Index

    rows = []
    for n in (10, 100, 1000):
        big = synthetic_museum(1, n)
        spec = NavigationSpec().set_access(
            "by-painter", "index", label_attribute="title"
        )
        (context,) = spec.build_contexts(big).values()
        middle = context.members[n // 2]
        index_anchors = Index(name="x", label_attribute="title").anchors_on(
            middle, context.members
        )
        tour_anchors = GuidedTour(name="x").anchors_on(middle, context.members)
        rows.append((n, len(index_anchors), len(tour_anchors)))
    print()
    print(
        format_table(
            ["context size", "Index anchors O(n)", "GuidedTour anchors O(1)"], rows
        )
    )

    print("\nDone.  See EXPERIMENTS.md for the paper-vs-measured record.")


if __name__ == "__main__":
    main()
