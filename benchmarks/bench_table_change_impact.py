"""T-C — derived table: the change request under three architectures.

The headline experiment.  Expected shape:

==========  =======================  =====================
approach    authored files touched   grows with site size?
==========  =======================  =====================
tangled     every page of context    yes, O(n)
xlink       links.xml only           no, O(1) files
aspect      navigation.spec only     no, O(1) lines
==========  =======================  =====================
"""

import pytest

from repro.baselines import synthetic_museum
from repro.metrics import all_impacts, aspect_impact, tangled_impact, xlink_impact


def test_headline_table_paper_museum(paper_fixture):
    impacts = {i.approach: i for i in all_impacts(paper_fixture)}
    assert impacts["tangled"].authored.files_touched == 9
    assert impacts["xlink"].authored.files_touched == 1
    assert impacts["aspect"].authored.files_touched == 1
    assert impacts["aspect"].authored.lines_changed == 2


def test_measure_tangled_impact(benchmark, paper_fixture):
    impact = benchmark(tangled_impact, paper_fixture)
    assert impact.authored.files_touched == 9


def test_measure_xlink_impact(benchmark, paper_fixture):
    impact = benchmark(xlink_impact, paper_fixture)
    assert impact.authored.touched_paths() == ["links.xml"]


def test_measure_aspect_impact(benchmark, paper_fixture):
    impact = benchmark(aspect_impact, paper_fixture)
    assert impact.authored.files_touched == 1


@pytest.mark.parametrize("paintings", [5, 20, 50])
def test_asymptotics_tangled_linear_separated_constant(paintings):
    fixture = synthetic_museum(4, paintings)
    tangled = tangled_impact(fixture)
    aspect = aspect_impact(fixture)
    xlink = xlink_impact(fixture)
    assert tangled.authored.files_touched == 4 * paintings   # O(n)
    assert xlink.authored.files_touched == 1                 # O(1)
    assert aspect.authored.lines_changed == 2                # O(1)
