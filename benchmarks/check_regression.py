"""Fail CI when the weaver hot-path trajectory moves backwards.

Compares a freshly-run ``BENCH_weaver_hotpath.json`` against the committed
baseline: every ``speedup_vs_seed`` entry of the baseline must still exist
and must not fall more than the tolerance below its committed value.
Speedups are ratios against the in-process legacy reproduction, so they
self-normalize across runner hardware — a noisy CI box slows both sides.

Usage::

    python benchmarks/check_regression.py \
        --baseline /tmp/bench-baseline.json --current BENCH_weaver_hotpath.json

The tolerance defaults to 0.15 (15%) and can be overridden with the
``BENCH_REGRESSION_TOLERANCE`` environment variable or ``--tolerance``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_CURRENT = Path(__file__).resolve().parent.parent / "BENCH_weaver_hotpath.json"


def _minor_version(payload: dict) -> str:
    return ".".join(payload.get("python", "").split(".")[:2])


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Human-readable failure messages (empty when the gate passes).

    Only series committed in the *baseline* are gated: a series that is
    present in the current run but absent from the baseline is a freshly
    added benchmark (this PR introduced it), and must never fail the gate
    — it has no committed floor yet.  :func:`new_series` reports them so
    the CI log shows what starts being gated once the run is committed.
    """
    failures = []
    baseline_speedups = baseline.get("speedup_vs_seed", {})
    current_speedups = current.get("speedup_vs_seed", {})
    for key, committed in sorted(baseline_speedups.items()):
        measured = current_speedups.get(key)
        if measured is None:
            failures.append(f"{key}: series disappeared from the benchmark")
            continue
        floor = committed * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{key}: {measured:.2f}x vs committed {committed:.2f}x "
                f"(floor {floor:.2f}x at {tolerance:.0%} tolerance)"
            )
    return failures


def new_series(baseline: dict, current: dict) -> list[str]:
    """Series present in the current run but not in the baseline (ungated)."""
    return sorted(
        set(current.get("speedup_vs_seed", {}))
        - set(baseline.get("speedup_vs_seed", {}))
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", default=DEFAULT_CURRENT, type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.15")),
        help="allowed fractional drop below the committed speedup (default 0.15)",
    )
    options = parser.parse_args(argv)

    baseline = json.loads(options.baseline.read_text())
    current = json.loads(options.current.read_text())
    base_python, current_python = _minor_version(baseline), _minor_version(current)
    if base_python != current_python:
        # Speedup ratios self-normalize across hardware, not across
        # interpreters: a CPython release can shift the seed and the
        # optimized path asymmetrically.  Gating across versions would
        # turn such shifts into permanent false failures, so refuse the
        # comparison instead of reporting a bogus verdict either way.
        print(
            "benchmark regression gate SKIPPED: baseline recorded on "
            f"python {base_python or '?'}, current run is "
            f"{current_python or '?'} — re-record the baseline on the "
            "gate's interpreter to compare",
            file=sys.stderr,
        )
        return 0
    failures = check(baseline, current, options.tolerance)
    if failures:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    added = new_series(baseline, current)
    if added:
        print(
            "note: new series not gated this run (no committed floor yet): "
            + ", ".join(added)
        )
    names = ", ".join(sorted(baseline.get("speedup_vs_seed", {})))
    print(f"benchmark regression gate passed ({names})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
