"""Fail CI when the weaver hot-path trajectory moves backwards.

Compares a freshly-run ``BENCH_weaver_hotpath.json`` against the committed
baseline: every ``speedup_vs_seed`` entry of the baseline must still exist
and must not fall more than the tolerance below its committed value.
Speedups are ratios against the in-process legacy reproduction, so they
self-normalize across runner hardware — a noisy CI box slows both sides.

Usage::

    python benchmarks/check_regression.py \
        --baseline /tmp/bench-baseline.json --current BENCH_weaver_hotpath.json

The tolerance defaults to 0.15 (15%) and can be overridden with the
``BENCH_REGRESSION_TOLERANCE`` environment variable or ``--tolerance``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_CURRENT = Path(__file__).resolve().parent.parent / "BENCH_weaver_hotpath.json"


def _minor_version(payload: dict) -> str:
    return ".".join(payload.get("python", "").split(".")[:2])


def _version_tuple(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split("."))
    except ValueError:
        return ()


def interpreter_gated_series(baseline: dict, current: dict) -> dict[str, str]:
    """Baseline series the current run's interpreter cannot produce.

    Benchmark payloads record interpreter floors per series in a
    ``requires_python`` map (``{"static_before_monitor": "3.12"}``).
    A committed series whose floor is above the current run's interpreter
    is *expected* to be absent — the monitor-tier series only exist where
    ``sys.monitoring`` does — so its absence is informational, never a
    "series disappeared" failure.  Returns ``{series: required_version}``.
    """
    requirements = {
        **baseline.get("requires_python", {}),
        **current.get("requires_python", {}),
    }
    running = _version_tuple(_minor_version(current))
    gated: dict[str, str] = {}
    for key in baseline.get("speedup_vs_seed", {}):
        needed = requirements.get(key)
        if needed and (not running or running < _version_tuple(needed)):
            gated[key] = needed
    return gated


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Human-readable failure messages (empty when the gate passes).

    Only series committed in the *baseline* are gated: a series that is
    present in the current run but absent from the baseline is a freshly
    added benchmark (this PR introduced it), and must never fail the gate
    — it has no committed floor yet.  :func:`new_series` reports them so
    the CI log shows what starts being gated once the run is committed.
    """
    failures = []
    baseline_speedups = baseline.get("speedup_vs_seed", {})
    current_speedups = current.get("speedup_vs_seed", {})
    gated_out = interpreter_gated_series(baseline, current)
    for key, committed in sorted(baseline_speedups.items()):
        measured = current_speedups.get(key)
        if measured is None:
            if key in gated_out:
                continue  # absent because the interpreter is too old
            failures.append(f"{key}: series disappeared from the benchmark")
            continue
        floor = committed * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{key}: {measured:.2f}x vs committed {committed:.2f}x "
                f"(floor {floor:.2f}x at {tolerance:.0%} tolerance)"
            )
    return failures


def new_series(baseline: dict, current: dict) -> list[str]:
    """Series present in the current run but not in the baseline (ungated)."""
    return sorted(
        set(current.get("speedup_vs_seed", {}))
        - set(baseline.get("speedup_vs_seed", {}))
    )


def delta_rows(baseline: dict, current: dict) -> list[tuple[str, str, str, str, str]]:
    """Per-series ``(series, committed, current, delta, gated)`` rows.

    Covers every ``speedup_vs_seed`` series (these gate; higher is better)
    and every raw ``results_ns`` series (informational; lower is better,
    so the delta sign is the raw relative change — a positive ns delta
    reads as "slower").  Series missing on either side show ``—`` and a
    ``new``/``gone`` delta, so a freshly added benchmark is *reported*
    before it ever gates — the path the request-path ``serve_page``
    series took before it was committed to ``speedup_vs_seed``.
    """
    rows: list[tuple[str, str, str, str, str]] = []
    gated_out = interpreter_gated_series(baseline, current)
    for section, gated in (("speedup_vs_seed", "yes"), ("results_ns", "no")):
        committed_map = baseline.get(section, {})
        measured_map = current.get(section, {})
        unit = "x" if section == "speedup_vs_seed" else ""
        for name in sorted(set(committed_map) | set(measured_map)):
            committed = committed_map.get(name)
            measured = measured_map.get(name)
            gating = gated if committed is not None else "not yet"
            if committed is None:
                delta = "new"
            elif measured is None:
                if section == "speedup_vs_seed" and name in gated_out:
                    delta = f"needs {gated_out[name]}+"
                    gating = "skipped"
                else:
                    delta = "gone"
            elif committed == 0:
                delta = "n/a"
            else:
                delta = f"{(measured - committed) / committed:+.1%}"
            rows.append(
                (
                    f"{section}.{name}",
                    "—" if committed is None else f"{committed:g}{unit}",
                    "—" if measured is None else f"{measured:g}{unit}",
                    delta,
                    gating,
                )
            )
    return rows


_HEADERS = ("series", "committed", "current", "delta", "gated")


def format_delta_table(rows: list[tuple[str, str, str, str, str]]) -> str:
    """The delta rows as an aligned plain-text table."""
    from repro.metrics import format_table

    return format_table(list(_HEADERS), rows)


def format_delta_markdown(rows: list[tuple[str, str, str, str, str]]) -> str:
    """The delta rows as a GitHub job-summary markdown table."""
    lines = [
        "### Weaver hot-path deltas vs committed baseline",
        "",
        "Speedup series gate (higher is better); raw ns series are "
        "informational (positive delta = slower).",
        "",
        "| " + " | ".join(_HEADERS) + " |",
        "| " + " | ".join(["---"] * len(_HEADERS)) + " |",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--current", default=DEFAULT_CURRENT, type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.15")),
        help="allowed fractional drop below the committed speedup (default 0.15)",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help=(
            "append the per-series delta table as markdown to this file "
            "(defaults to $GITHUB_STEP_SUMMARY when set — the CI job summary)"
        ),
    )
    options = parser.parse_args(argv)

    baseline = json.loads(options.baseline.read_text())
    current = json.loads(options.current.read_text())
    rows = delta_rows(baseline, current)
    print(format_delta_table(rows))
    summary_path = options.summary
    if summary_path is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        summary_path = Path(os.environ["GITHUB_STEP_SUMMARY"])
    if summary_path is not None:
        with summary_path.open("a") as handle:
            handle.write(format_delta_markdown(rows))
    base_python, current_python = _minor_version(baseline), _minor_version(current)
    if base_python != current_python:
        # Speedup ratios self-normalize across hardware, not across
        # interpreters: a CPython release can shift the seed and the
        # optimized path asymmetrically.  Gating across versions would
        # turn such shifts into permanent false failures, so refuse the
        # comparison instead of reporting a bogus verdict either way.
        print(
            "benchmark regression gate SKIPPED: baseline recorded on "
            f"python {base_python or '?'}, current run is "
            f"{current_python or '?'} — re-record the baseline on the "
            "gate's interpreter to compare",
            file=sys.stderr,
        )
        return 0
    failures = check(baseline, current, options.tolerance)
    if failures:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    gated_out = interpreter_gated_series(baseline, current)
    if gated_out:
        listed = ", ".join(
            f"{name} (needs {needed}+)" for name, needed in sorted(gated_out.items())
        )
        print(
            "note: committed series not measurable on python "
            f"{current_python or '?'}, skipped: {listed}"
        )
    added = new_series(baseline, current)
    if added:
        print(
            "note: new series not gated this run (no committed floor yet): "
            + ", ".join(added)
        )
    names = ", ".join(sorted(baseline.get("speedup_vs_seed", {})))
    print(f"benchmark regression gate passed ({names})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
