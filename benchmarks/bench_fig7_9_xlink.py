"""F7–F9 — Figures 7–9: the XLink artifacts and the linkbase machinery.

Regenerates picasso.xml / avignon.xml / links.xml, then prices the
linkbase pipeline: serialization, parsing, arc expansion and traversal
queries, scaling the number of links.

Expected shape: parse and graph construction are linear in the linkbase
size; outgoing() lookups are O(1) after indexing.
"""

import pytest

from repro.baselines import synthetic_museum
from repro.core import (
    default_museum_spec,
    export_data_documents,
    export_linkbase,
)
from repro.xlink import Linkbase, find_links
from repro.xmlcore import parse, serialize


def test_figure_7_8_data_documents_regenerated(paper_fixture):
    documents = export_data_documents(paper_fixture)
    picasso = serialize(documents["picasso.xml"], indent="  ")
    avignon = serialize(documents["avignon.xml"], indent="  ")
    assert "<name>Pablo Picasso</name>" in picasso
    assert "<title>Les Demoiselles d'Avignon</title>" in avignon
    # The whole point of Figures 7-8: no links in the data.
    assert "xlink" not in picasso and "xlink" not in avignon


def test_figure_9_linkbase_regenerated(paper_fixture):
    text = serialize(
        export_linkbase(paper_fixture, default_museum_spec("index")), indent="  "
    )
    assert 'xlink:type="extended"' in text
    assert 'xlink:type="locator"' in text
    assert 'xlink:type="arc"' in text
    assert "picasso.xml" in text and "avignon.xml" in text


def test_export_linkbase_speed(benchmark, paper_fixture):
    spec = default_museum_spec("indexed-guided-tour")
    document = benchmark(export_linkbase, paper_fixture, spec)
    assert document.root_element.child_elements()


# 300 members already means a 90k-traversal index cross product; the
# asymptote is visible without paying for the 10^6 case on every run.
@pytest.fixture(scope="module", params=[10, 100, 300])
def linkbase_text_of_size(request):
    paintings = request.param
    fixture = synthetic_museum(1, paintings)
    spec = default_museum_spec("indexed-guided-tour")
    return paintings, serialize(export_linkbase(fixture, spec), indent="  ")


def test_parse_linkbase_scaling(benchmark, linkbase_text_of_size):
    _, text = linkbase_text_of_size
    document = benchmark(parse, text)
    assert find_links(document)


def test_graph_construction_scaling(benchmark, linkbase_text_of_size):
    paintings, text = linkbase_text_of_size
    document = parse(text)

    def build_graph():
        return Linkbase.from_document("links.xml", document).graph()

    graph = benchmark(build_graph)
    # IGT context: n^2 index pairs (with self pairs) + 2(n-1) tour arcs,
    # plus the exposed link classes and home entries.
    assert len(graph) >= paintings * paintings


def test_outgoing_lookup_is_indexed(benchmark, linkbase_text_of_size):
    _, text = linkbase_text_of_size
    graph = Linkbase.from_document(
        "links.xml", parse(text)
    ).graph()
    some_uri = "work0_1.xml"
    traversals = benchmark(graph.outgoing, some_uri)
    assert traversals


def test_round_trip_serialize_parse(benchmark, paper_fixture):
    """links.xml must survive its trip to disk and back."""
    document = export_linkbase(paper_fixture, default_museum_spec("index"))

    def round_trip():
        return parse(serialize(document, indent="  "))

    reparsed = benchmark(round_trip)
    before = [type(l).__name__ for l in find_links(document)]
    after = [type(l).__name__ for l in find_links(reparsed)]
    assert before == after
