"""Ablations — design choices behind the reproduction, measured.

**A1 — linkbase index encoding.**  Our exporter encodes an index as a
single *open* arc (no from/to: XLink's every-participant rule), giving an
O(1)-arc artifact whose cross product is computed at load time.  The
alternative is materializing all n·(n−1) pairs as explicit arcs.  Both
yield the same traversal graph; the ablation measures artifact size and
parse time.  Expected: open-arc artifact is O(n) bytes vs O(n²), and
parses proportionally faster, at identical graph semantics.

**A2 — embedded vs referenced index.**  Figures 3–4 embed the sibling
index in every member page; the alternative keeps one index page and a
single back-anchor per member.  Expected: embedded pages are O(n) each
(O(n²) site bytes per context) vs O(1) (plus one O(n) index page), which
is exactly why the tangled change impact is so painful.
"""

import pytest

from repro.baselines import synthetic_museum
from repro.core import NavigationSpec, export_linkbase
from repro.hypermedia import Index
from repro.web import nav_block
from repro.xlink import Linkbase
from repro.xmlcore import XLINK_NAMESPACE, Document, Element, QName, parse, serialize


def open_arc_linkbase_text(n: int) -> str:
    fixture = synthetic_museum(1, n)
    spec = NavigationSpec().set_access("by-painter", "index", label_attribute="title")
    return serialize(export_linkbase(fixture, spec), indent="  ")


def per_pair_linkbase_text(n: int) -> str:
    """The ablated encoding: one arc element per (i, j) pair."""
    root = Element("links", namespaces={"xlink": XLINK_NAMESPACE})
    link = Element("context")
    link.set(QName(XLINK_NAMESPACE, "type"), "extended")
    root.append(link)
    for i in range(n):
        locator = Element("member")
        locator.set(QName(XLINK_NAMESPACE, "type"), "locator")
        locator.set(QName(XLINK_NAMESPACE, "href"), f"work0_{i}.xml")
        locator.set(QName(XLINK_NAMESPACE, "label"), f"m{i}")
        link.append(locator)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            arc = Element("arc")
            arc.set(QName(XLINK_NAMESPACE, "type"), "arc")
            arc.set(QName(XLINK_NAMESPACE, "from"), f"m{i}")
            arc.set(QName(XLINK_NAMESPACE, "to"), f"m{j}")
            arc.set(QName(XLINK_NAMESPACE, "arcrole"), "urn:repro:nav:entry")
            link.append(arc)
    document = Document()
    document.append(root)
    return serialize(document, indent="  ")


SIZES = [10, 50]


@pytest.mark.parametrize("n", SIZES)
def test_a1_artifact_sizes(n):
    open_size = len(open_arc_linkbase_text(n))
    pair_size = len(per_pair_linkbase_text(n))
    # Open-arc artifact grows linearly; per-pair quadratically.
    assert pair_size > open_size
    if n >= 50:
        assert pair_size > 5 * open_size


@pytest.mark.parametrize("n", SIZES)
def test_a1_parse_open_arc(benchmark, n):
    text = open_arc_linkbase_text(n)
    benchmark(parse, text)


@pytest.mark.parametrize("n", SIZES)
def test_a1_parse_per_pair(benchmark, n):
    text = per_pair_linkbase_text(n)
    benchmark(parse, text)


@pytest.mark.parametrize("n", SIZES)
def test_a1_same_traversal_semantics(n):
    """Both encodings expand to the same (start, end) traversal set."""
    def pairs(text):
        graph = Linkbase.from_document("links.xml", parse(text)).graph()
        return {
            (str(t.start.href), str(t.end.href))
            for t in graph.traversals
            if t.start is not t.end
        }

    open_pairs = {
        p for p in pairs(open_arc_linkbase_text(n)) if "work" in p[0] and "work" in p[1]
    }
    pair_pairs = pairs(per_pair_linkbase_text(n))
    assert open_pairs == pair_pairs


@pytest.mark.parametrize("n", SIZES)
def test_a2_embedded_index_page_bytes(benchmark, n):
    fixture = synthetic_museum(1, n)
    spec = NavigationSpec().set_access("by-painter", "index", label_attribute="title")
    (context,) = spec.build_contexts(fixture).values()
    structure = Index(name="ctx", label_attribute="title", embed_in_members=True)

    def render():
        return sum(
            len(serialize(nav_block(structure.anchors_on(node, context.members))))
            for node in context.members
        )

    total = benchmark(render)
    assert total > n * n  # O(n) anchors x O(n) pages


@pytest.mark.parametrize("n", SIZES)
def test_a2_referenced_index_page_bytes(benchmark, n):
    fixture = synthetic_museum(1, n)
    spec = NavigationSpec().set_access("by-painter", "index", label_attribute="title")
    (context,) = spec.build_contexts(fixture).values()
    structure = Index(
        name="ctx",
        label_attribute="title",
        embed_in_members=False,
        index_uri="ctx/index.html",
    )

    def render():
        return sum(
            len(serialize(nav_block(structure.anchors_on(node, context.members))))
            for node in context.members
        )

    total = benchmark(render)
    assert total < 150 * n  # O(1) anchors per page
