"""F2 — Figure 2: Index vs (Indexed) Guided Tour.

Prices the two access structures of the paper's Figure 2 as the context
grows.  Expected shape: a guided tour's per-page anchors are O(1) (next /
prev), an embedded index's are O(n) — which is also why the tangled
Figure-3 pages balloon with context size.
"""

import pytest

from repro.baselines import synthetic_museum
from repro.core import NavigationSpec
from repro.hypermedia import GuidedTour, Index, IndexedGuidedTour

SIZES = [10, 100, 1000]


def members_of_size(n: int):
    fixture = synthetic_museum(1, n)
    spec = NavigationSpec().set_access(
        "by-painter", "index", label_attribute="title"
    )
    contexts = spec.build_contexts(fixture)
    (context,) = contexts.values()
    assert len(context.members) == n
    return context.members


@pytest.fixture(scope="module", params=SIZES)
def members(request):
    return members_of_size(request.param)


def test_index_member_page_anchors(benchmark, members):
    structure = Index(name="ctx", label_attribute="title")
    middle = members[len(members) // 2]
    anchors = benchmark(structure.anchors_on, middle, members)
    assert len(anchors) == len(members) - 1  # O(n)


def test_guided_tour_member_page_anchors(benchmark, members):
    structure = GuidedTour(name="ctx", label_attribute="title")
    middle = members[len(members) // 2]
    anchors = benchmark(structure.anchors_on, middle, members)
    assert len(anchors) == 2  # O(1)


def test_indexed_guided_tour_member_page_anchors(benchmark, members):
    structure = IndexedGuidedTour(name="ctx", label_attribute="title")
    middle = members[len(members) // 2]
    anchors = benchmark(structure.anchors_on, middle, members)
    assert len(anchors) == len(members) + 1  # index + prev/next

def test_index_entry_page(benchmark, members):
    structure = Index(name="ctx", label_attribute="title")
    anchors = benchmark(structure.entries, members)
    assert len(anchors) == len(members)


def test_full_context_traversal(benchmark, members):
    """Walking the whole tour (every next_after) — the browsing workload."""
    from repro.hypermedia import NavigationalContext

    context = NavigationalContext(
        "walk", list(members), GuidedTour(name="walk")
    )

    def walk():
        node = context.members[0]
        steps = 0
        while True:
            following = context.next_after(node)
            if following is None:
                return steps
            node = following
            steps += 1

    assert walk() == len(members) - 1
    benchmark(walk)
