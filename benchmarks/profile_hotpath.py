"""Profile the advised-call hot path, tier by tier.

Where ``bench_weaver_hotpath.py`` prices each interception tier as a single
number, this harness answers *where the nanoseconds go*: it deploys the
same observation-only aspect through every tier the interpreter supports
(compiled wrappers, generated wrappers, and the ``sys.monitoring`` tier on
3.12+), times the advised call, and runs the call loop under ``cProfile``
so the per-function breakdown of each tier's dispatch is visible side by
side.  The summary table is the per-tier ns breakdown; the per-tier
profile tables attribute the overhead to advice bodies, pool operations
and (for the monitor tier) the PY_START/PY_RETURN callbacks.

The two tool stacks coexist — ``cProfile`` holds ``sys.monitoring``'s
reserved profiler tool id on 3.12+ while the weaver claims a free id of
its own — but the monitor tier's callbacks never appear as frames in the
profile: another tool's callbacks are invisible to the profile hook, so
their cost is attributed to the advised method's own self-time.  The
monitor tier's table therefore shows *no* dispatch frames at all and an
inflated ``render`` self-time — which is the residue-free property,
exactly as a production profiler would see it.

Run::

    PYTHONPATH=src python benchmarks/profile_hotpath.py

``--smoke`` (used by CI's bench job) runs a few hundred calls per tier,
asserts every expected tier actually engaged, prints only the summary
table, and exits non-zero if any tier fell back to another one.
"""

from __future__ import annotations

import argparse
import cProfile
import contextlib
import os
import pstats
import sys
import timeit
from pathlib import Path

from repro.aop import Aspect, WeaverRuntime, before, monitor_supported
from repro.metrics import format_table


class ObservationAspect(Aspect):
    """The same observation-only shape every tier accepts."""

    def __init__(self):
        self.count = 0

    @before("execution(Node.render)")
    def note(self, jp):
        self.count += 1


def fresh_node_class():
    class Node:
        def render(self):
            return 42

    return Node


# Tier name -> (REPRO_AOP_CODEGEN, REPRO_AOP_MONITOR).  The monitor tier
# keeps codegen on: shadows the planner pins to wrappers should land on
# the fastest wrapper tier, exactly as in production.
_TIER_ENV = {
    "compiled": ("0", "0"),
    "codegen": ("1", "0"),
    "monitor": ("1", "1"),
}


def available_tiers():
    tiers = ["compiled", "codegen"]
    if monitor_supported():
        tiers.append("monitor")
    return tiers


@contextlib.contextmanager
def tier_env(tier):
    codegen, monitor = _TIER_ENV[tier]
    saved = {
        name: os.environ.get(name)
        for name in ("REPRO_AOP_CODEGEN", "REPRO_AOP_MONITOR")
    }
    os.environ["REPRO_AOP_CODEGEN"] = codegen
    os.environ["REPRO_AOP_MONITOR"] = monitor
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def time_call(fn, *, number):
    best = min(timeit.repeat(fn, repeat=5, number=number))
    return best / number * 1e9


def profile_rows(profiler, *, top):
    """The hottest ``top`` functions as ``(function, ncalls, ms, ns/call)``."""
    stats = pstats.Stats(profiler)
    entries = []
    for (filename, lineno, funcname), row in stats.stats.items():
        ncalls, _, tottime, _, _ = row
        if not ncalls:
            continue
        where = "~" if filename == "~" else Path(filename).name
        label = f"{where}:{lineno}({funcname})" if lineno else f"{where}({funcname})"
        entries.append((tottime, ncalls, label))
    entries.sort(reverse=True)
    return [
        (label, ncalls, f"{tottime * 1e3:.2f}", f"{tottime / ncalls * 1e9:.0f}")
        for tottime, ncalls, label in entries[:top]
    ]


def run_tier(tier, *, calls, top):
    """Deploy through one tier; return (ns_per_call, engaged, profile rows)."""
    Node = fresh_node_class()
    weaver = WeaverRuntime()
    aspect = ObservationAspect()
    with tier_env(tier):
        deployment = weaver.deploy(aspect, [Node])
    node = Node()
    monitor_engaged = bool(deployment.monitor_sites)
    engaged = monitor_engaged if tier == "monitor" else not monitor_engaged
    try:
        ns = time_call(node.render, number=calls)
        render = node.render
        profiler = cProfile.Profile()
        profiler.enable()
        for _ in range(calls):
            render()
        profiler.disable()
        return ns, engaged, profile_rows(profiler, top=top)
    finally:
        weaver.undeploy(deployment)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--calls",
        type=int,
        default=50_000,
        help="advised calls per tier, for both timing and profiling",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=12,
        help="profile rows to print per tier",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI mode: a few hundred calls per tier, summary table only, "
            "non-zero exit if a tier fell back"
        ),
    )
    options = parser.parse_args(argv)
    calls = 400 if options.smoke else options.calls

    Node = fresh_node_class()
    plain_ns = time_call(Node().render, number=calls)

    summary = [("plain", f"{plain_ns:.1f}", "—", "1.00x", "—")]
    profiles = []
    fallbacks = []
    for tier in available_tiers():
        ns, engaged, rows = run_tier(tier, calls=calls, top=options.top)
        if not engaged:
            fallbacks.append(tier)
        summary.append(
            (
                tier,
                f"{ns:.1f}",
                f"{ns - plain_ns:.1f}",
                f"{ns / plain_ns:.2f}x",
                "yes" if engaged else "FELL BACK",
            )
        )
        profiles.append((tier, rows))

    print(
        format_table(
            ["tier", "ns/call", "overhead ns", "vs plain", "engaged"],
            summary,
            title=f"Advised observation-only call by tier ({calls} calls)",
        )
    )
    if not monitor_supported():
        print(
            "\nmonitor tier skipped: sys.monitoring needs python 3.12+ "
            f"(running {sys.version.split()[0]})"
        )
    if not options.smoke:
        for tier, rows in profiles:
            print()
            print(
                format_table(
                    ["function", "ncalls", "total ms", "ns/call"],
                    rows,
                    title=f"cProfile: {tier} tier",
                )
            )
            if tier == "monitor":
                print(
                    "(monitoring callbacks are invisible to cProfile; "
                    "their cost lands in the advised method's self-time)"
                )
    if fallbacks:
        print(
            "profile_hotpath FAILED: tier(s) did not engage: "
            + ", ".join(fallbacks),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
