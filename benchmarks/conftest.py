"""Shared fixtures for the benchmark harness.

Scales: the paper's museum has 3 paintings per context; the synthetic
museums stretch the same shape to expose the asymptotics (tangled change
impact grows with context size, separated impact does not).
"""

import pytest

from repro.baselines import museum_fixture, synthetic_museum


@pytest.fixture(scope="session")
def paper_fixture():
    """The paper's museum (4 painters, 9 paintings)."""
    return museum_fixture()


@pytest.fixture(scope="session")
def small_fixture():
    return synthetic_museum(5, 5)


@pytest.fixture(scope="session")
def medium_fixture():
    return synthetic_museum(10, 20)


@pytest.fixture(scope="session")
def large_fixture():
    return synthetic_museum(20, 50)
