"""Weaver hot path: the seed → compiled → code-generated trajectory.

The seed weaver re-partitioned advice by kind and re-evaluated every
pointcut's dynamic residue on *every* advised call, and pushed a join point
frame whether or not anything could observe it.  PR 1's compiled weaver
does the partitioning once at deployment time and skips stack bookkeeping
for statically-matched shadows; PR 2 code-generates a specialized closure
per shadow over a pooled join point (``REPRO_AOP_CODEGEN``); on 3.12+ a
``sys.monitoring`` tier intercepts observation-only advice with zero
wrapper frames (``REPRO_AOP_MONITOR``).  This harness prices every tier —
using a faithful reproduction of the seed implementation as the baseline —
plus the join point pool itself and the single-scan batch planner, and
writes the numbers to
``BENCH_weaver_hotpath.json`` at the repo root so successive PRs can track
the trajectory (and CI can refuse regressions: see ``check_regression.py``).

Run::

    PYTHONPATH=src python benchmarks/bench_weaver_hotpath.py
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import inspect
import json
import os
import platform
import sys
import timeit
from pathlib import Path
from types import FunctionType, ModuleType

from repro.aop import (
    Aspect,
    AdviceKind,
    JoinPointPool,
    WeaverRuntime,
    around,
    before,
    field_get,
    field_set,
    generator,
    monitor_supported,
    proceed,
    return_,
)
from repro.aop.joinpoint import (
    JoinPoint,
    JoinPointKind,
    ProceedingJoinPoint,
    joinpoint_frame,
)
from repro.aop.weaver import MethodShadow, _scan_method_shadows

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_weaver_hotpath.json"


# -- the seed (pre-refactor) implementation, reproduced as the baseline -------


def _legacy_wrap_around(advice, jp, inner):
    def runner(*args, **kwargs):
        pjp = ProceedingJoinPoint(jp, inner)
        pjp.args = args or jp.args
        pjp.kwargs = kwargs or jp.kwargs
        return advice.invoke(pjp)

    return runner


def _legacy_run_advice_chain(advice, jp, proceed):
    befores = [a for a in advice if a.kind is AdviceKind.BEFORE]
    arounds = [a for a in advice if a.kind is AdviceKind.AROUND]
    returnings = [a for a in advice if a.kind is AdviceKind.AFTER_RETURNING]
    throwings = [a for a in advice if a.kind is AdviceKind.AFTER_THROWING]
    finallys = [a for a in advice if a.kind is AdviceKind.AFTER]

    chain = proceed
    for around_advice in reversed(arounds):
        chain = _legacy_wrap_around(around_advice, jp, chain)

    for item in befores:
        item.invoke(jp)
    try:
        result = chain(*jp.args, **jp.kwargs)
    except Exception as exc:
        jp.result = exc
        for item in reversed(throwings):
            item.invoke(jp)
        for item in reversed(finallys):
            item.invoke(jp)
        raise
    jp.result = result
    for item in reversed(returnings):
        item.invoke(jp)
    for item in reversed(finallys):
        item.invoke(jp)
    return result


class LegacyWeaver(WeaverRuntime):
    """The seed weaver: per-call partitioning, filtering and frame pushes."""

    @staticmethod
    def _make_method_wrapper(shadow, advice, scope=None):
        original = shadow.original

        @functools.wraps(original)
        def wrapper(self, *args, **kwargs):
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                shadow.name,
                args,
                kwargs,
            )
            with joinpoint_frame(jp):
                applicable = [a for a in advice if a.pointcut.matches_dynamic(jp)]
                if not applicable:
                    return original(self, *args, **kwargs)

                def proceed(*call_args, **call_kwargs):
                    return original(self, *call_args, **call_kwargs)

                return _legacy_run_advice_chain(applicable, jp, proceed)

        wrapper.__woven__ = True
        wrapper.__woven_original__ = original
        return wrapper


# -- workloads ----------------------------------------------------------------


def fresh_node_class():
    class Node:
        def render(self):
            return 42

    return Node


def fresh_field_node_class():
    class Node:
        def __init__(self):
            self.level = 0

        def render(self):
            return self.level

    return Node


class FieldAspect(Aspect):
    """Static before advice on a field's get and set join points."""

    @before(field_get("Node.level"))
    def on_get(self, jp):
        pass

    @before(field_set("Node.level"))
    def on_set(self, jp):
        pass


class BeforeAspect(Aspect):
    def __init__(self):
        self.count = 0

    @before("execution(Node.render)")
    def note(self, jp):
        self.count += 1


class AroundAspect(Aspect):
    @around("execution(Node.render)")
    def wrap(self, jp):
        return jp.proceed()


class GeneratorAspect(Aspect):
    """Before-shaped generator advice: do the work, then ``yield proceed``.

    The generator analog of :class:`BeforeAspect` (same counting body), so
    the ``call_generator_before_*`` series price exactly what the protocol
    adds over a plain before chain: one generator frame per call plus the
    send/StopIteration drive.
    """

    def __init__(self):
        self.count = 0

    @generator("execution(Node.render)")
    def note(self, jp):
        self.count += 1
        yield proceed


class SecondBeforeAspect(Aspect):
    """A second static before aspect, for stacked-deployment pricing."""

    def __init__(self):
        self.count = 0

    @before("execution(Node.render)")
    def note(self, jp):
        self.count += 1


class TargetedAspect(Aspect):
    """Carries a dynamic residue so both weavers take the filtering path."""

    def __init__(self, node_cls):
        from repro.aop import execution, target

        self._pointcut = execution("Node.render") & target(node_cls)

    def advice(self):
        from repro.aop import Advice

        return [
            Advice(
                kind=AdviceKind.BEFORE,
                pointcut=self._pointcut,
                function=lambda jp: None,
            )
        ]

    def validate(self):
        pass


def time_call(fn, *, repeat=5, number=50_000):
    """Best-of-N per-call time in nanoseconds."""
    best = min(timeit.repeat(fn, repeat=repeat, number=number))
    return best / number * 1e9


@contextlib.contextmanager
def codegen_mode(enabled):
    """Force the wrapper tier for deployments made inside the block."""
    previous = os.environ.get("REPRO_AOP_CODEGEN")
    os.environ["REPRO_AOP_CODEGEN"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_AOP_CODEGEN", None)
        else:
            os.environ["REPRO_AOP_CODEGEN"] = previous


@contextlib.contextmanager
def monitor_mode(enabled):
    """Force the monitor tier on (or off) for deployments inside the block."""
    previous = os.environ.get("REPRO_AOP_MONITOR")
    os.environ["REPRO_AOP_MONITOR"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_AOP_MONITOR", None)
        else:
            os.environ["REPRO_AOP_MONITOR"] = previous


def bench_advised_call(weaver_cls, aspect_factory, *, codegen=False):
    Node = fresh_node_class()
    weaver = weaver_cls()
    aspect = aspect_factory(Node)
    with codegen_mode(codegen):
        deployment = weaver.deploy(aspect, [Node])
    node = Node()
    try:
        return time_call(node.render)
    finally:
        weaver.undeploy(deployment)


def bench_stacked_advised_call(weaver_cls, *, codegen=False):
    """Two static before aspects stacked on one shadow (two deployments).

    Prices the wrapper-over-wrapper composition the audience scenarios
    lean on: the outer deployment's wrapper proceeds into the inner one.
    """
    Node = fresh_node_class()
    weaver = weaver_cls()
    with codegen_mode(codegen):
        first = weaver.deploy(BeforeAspect(), [Node])
        second = weaver.deploy(SecondBeforeAspect(), [Node])
    node = Node()
    try:
        return time_call(node.render)
    finally:
        weaver.undeploy(second)
        weaver.undeploy(first)


def _module_func_fixture():
    """A synthetic module with one weavable module-level function."""
    module = ModuleType("benchmod")
    namespace = {"__name__": "benchmod"}
    exec("def render():\n    return 42\n", namespace)
    module.render = namespace["render"]
    return module


class ModuleBeforeAspect(Aspect):
    """Static before advice on a module-level function."""

    @before("execution(benchmod.render)")
    def note(self, jp):
        pass


def bench_module_func_call(*, legacy, codegen=True):
    """Advised module-level function call: weave() vs the seed pattern.

    The seed weaver had no module-function targets at all; its honest
    counterfactual is the wrapper it would have installed — rebind the
    module global to a closure that builds a join point, pushes a frame
    and re-filters/partitions the advice on *every* call (the same
    per-call work ``LegacyWeaver`` does for methods).  The current path
    weaves the module through ``runtime.weave`` and prices the installed
    tier's wrapper.
    """
    module = _module_func_fixture()
    if legacy:
        original = module.render
        advice = ModuleBeforeAspect().advice()

        @functools.wraps(original)
        def wrapper(*args, **kwargs):
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                None,
                module,
                "render",
                args,
                kwargs,
            )
            with joinpoint_frame(jp):
                applicable = [a for a in advice if a.pointcut.matches_dynamic(jp)]
                if not applicable:
                    return original(*args, **kwargs)

                def proceed_fn(*call_args, **call_kwargs):
                    return original(*call_args, **call_kwargs)

                return _legacy_run_advice_chain(applicable, jp, proceed_fn)

        module.render = wrapper
        try:
            return time_call(module.render)
        finally:
            module.render = original

    weaver = WeaverRuntime()
    with codegen_mode(codegen):
        handle = weaver.weave(module, ModuleBeforeAspect())
    try:
        return time_call(module.render)
    finally:
        handle.undeploy()


def bench_instance_scoped_call(*, scoped):
    """Instance-scoped dispatch: the scoped chain, or unscoped passthrough.

    Deploys a static before aspect scoped to one instance (codegen tier:
    marker-attribute dispatch with exact-signature forwarding).  With
    ``scoped`` the advised instance is timed — chain cost plus dispatch —
    otherwise a *different* instance of the same class is timed through
    the same wrapper: the near-plain passthrough every unscoped receiver
    pays while any instance-scoped deployment is live on its class.
    """
    Node = fresh_node_class()
    weaver = WeaverRuntime()
    scoped_node, unscoped_node = Node(), Node()
    with codegen_mode(True):
        deployment = weaver.deploy(BeforeAspect(), [Node], instances=[scoped_node])
    node = scoped_node if scoped else unscoped_node
    try:
        return time_call(node.render)
    finally:
        weaver.undeploy(deployment)


def bench_monitor_call(*, advised):
    """Monitor-tier dispatch: the advised call, or an unadvised sibling.

    Deploys a static observation-only before aspect through the
    ``sys.monitoring`` tier (no wrapper in the class ``__dict__``) and
    prices either the advised method — one PY_START callback dispatching
    the advice table — or a *different*, unadvised method of the same
    class while the monitor deployment is live: the zero-residue
    passthrough, which must cost a true plain call because nothing was
    installed on the class at all.
    """

    class Node:
        def render(self):
            return 42

        def sibling(self):
            return 7

    weaver = WeaverRuntime()
    with monitor_mode(True):
        deployment = weaver.deploy(BeforeAspect(), [Node])
    assert deployment.monitor_sites, "monitor tier did not engage"
    node = Node()
    fn = node.render if advised else node.sibling
    try:
        number = 50_000 if advised else 200_000
        return time_call(fn, number=number)
    finally:
        weaver.undeploy(deployment)


def bench_field_access(*, codegen, write):
    """Advised field get/set: generic descriptor chain vs generated accessors.

    The generic tier allocates a ``read``/``write`` closure and runs the
    compiled chain per access; the codegen tier deploys a generated
    ``_WovenField`` subclass that inlines the advice and the backing
    ``__dict__`` access over a pooled join point.
    """
    Node = fresh_field_node_class()
    weaver = WeaverRuntime()
    with codegen_mode(codegen):
        deployment = weaver.deploy(FieldAspect(), [Node], fields=["level"])
    node = Node()
    if write:

        def one():
            node.level = 1

    else:

        def one():
            return node.level

    try:
        return time_call(one)
    finally:
        weaver.undeploy(deployment)


def bench_joinpoint_construction(*, pooled):
    """Price one join point per call: pool acquire/release vs. dataclass.

    This is the "lazy join point" rung in isolation — what every generated
    static wrapper saves per call by popping a blank slotted instance off
    the per-shadow free list instead of running the two-level dataclass
    ``__init__``.
    """
    holder = object()
    args = (1, 2)
    kwargs = {"a": 3}
    if pooled:
        pool = JoinPointPool(JoinPointKind.METHOD_EXECUTION, "render")

        def one():
            jp = pool.acquire(holder, args, kwargs)
            pool.release(jp)
            return jp

    else:

        def one():
            return JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                holder,
                object,
                "render",
                args,
                kwargs,
            )

    return time_call(one, number=100_000)


def bench_serve_page(*, legacy, cached=False):
    """Price one served page: the HTTP request path vs the seed's serving.

    ``legacy`` is the seed's only serving story: one *class-wide* weave of
    the audience's navigation stack (through the faithful seed weaver) and
    a direct render+serialize per request — no instance scopes, no session
    tier, and necessarily one audience per process.  The current path is a
    full :class:`~repro.navigation.NavigationApp` request: WSGI routing,
    session lookup, instance-scope dispatch through the audience *and*
    session tiers, the breadcrumb trail, then the same render+serialize —
    with the skeleton cache *disabled*, so the series keeps pricing the
    render path as the cache tier evolves.

    ``cached`` prices the same request with the weave-epoch page cache on
    and warm: an epoch read, a cache hit, a fresh trail fragment and the
    skeleton splice, instead of a render.
    """
    import io

    from repro.baselines import museum_fixture
    from repro.core import NavigationAspect, PageRenderer, default_museum_spec

    fixture = museum_fixture()
    node = fixture.painting_node("guitar")
    if legacy:
        weaver = LegacyWeaver()
        deployments = [
            weaver.deploy(
                NavigationAspect(default_museum_spec(access), fixture),
                [PageRenderer],
            )
            for access in ("index", "guided-tour")
        ]
        renderer = PageRenderer(fixture)

        def one():
            return renderer.render_node(node).html()

        try:
            return time_call(one, repeat=3, number=500)
        finally:
            for deployment in reversed(deployments):
                weaver.undeploy(deployment)

    from repro.navigation import (
        AudienceBundle,
        AudienceServer,
        NavigationApp,
        ServingConfig,
    )

    bundles = [AudienceBundle("visitor", ("index", "guided-tour"))]
    config = ServingConfig(cache_enabled=cached)
    with codegen_mode(True):
        with AudienceServer(fixture, bundles, config=config) as server:
            app = NavigationApp(server)
            environ = {
                "REQUEST_METHOD": "GET",
                "PATH_INFO": "/visitor/PaintingNode/guitar.html",
                "HTTP_X_REPRO_SESSION": "bench",
                "CONTENT_LENGTH": "0",
                "wsgi.input": io.BytesIO(b""),
            }

            def start_response(status, headers):
                assert status == "200 OK", status

            def one():
                return app(environ, start_response)

            # Open the session — and, when cached, install the skeleton
            # under the live epoch — outside the timed region.
            one()
            try:
                if cached:
                    return time_call(one, repeat=3, number=10_000)
                return time_call(one, repeat=3, number=500)
            finally:
                app.close()


def bench_serve_async(*, requests=800):
    """Per-request latency through the ASGI front, in-process — p50/p99 in µs.

    Drives the :class:`~repro.navigation.AsgiNavigationApp` callable
    directly on an event loop (no TCP, no HTTP parsing), so the series
    prices exactly what the async front adds over ``respond()``: scope →
    environ translation, the executor hop for the sync render path, and
    the response message plumbing.  Committed as raw microsecond series
    (informational, not gated): absolute percentiles are too
    hardware-dependent to floor, but the trajectory across PRs is worth
    tracking next to ``serve_page_ns``.
    """
    import time

    from repro.baselines import museum_fixture
    from repro.navigation import (
        AsgiNavigationApp,
        AudienceBundle,
        AudienceServer,
        NavigationApp,
        ServingConfig,
    )
    from repro.navigation.http import quantile

    fixture = museum_fixture()
    bundles = [AudienceBundle("visitor", ("index", "guided-tour"))]
    with codegen_mode(True):
        with AudienceServer(fixture, bundles, config=ServingConfig()) as server:
            app = NavigationApp(server)
            asgi = AsgiNavigationApp(app)

            async def one():
                scope = {
                    "type": "http",
                    "http_version": "1.1",
                    "method": "GET",
                    "path": "/visitor/PaintingNode/guitar.html",
                    "raw_path": b"/visitor/PaintingNode/guitar.html",
                    "query_string": b"",
                    "headers": [(b"x-repro-session", b"bench")],
                }
                messages = [
                    {"type": "http.request", "body": b"", "more_body": False}
                ]

                async def receive():
                    if messages:
                        return messages.pop(0)
                    return {"type": "http.disconnect"}

                async def send(message):
                    if message["type"] == "http.response.start":
                        assert message["status"] == 200, message["status"]

                await asgi(scope, receive, send)

            async def drive():
                # Warm-up opens the session and fills the page cache, so
                # the timed region prices the steady-state request.
                for _ in range(50):
                    await one()
                samples = []
                for _ in range(requests):
                    started = time.perf_counter()
                    await one()
                    samples.append((time.perf_counter() - started) * 1e6)
                return samples

            try:
                samples = sorted(asyncio.run(drive()))
            finally:
                app.close()
    return quantile(samples, 0.5), quantile(samples, 0.99)


def _legacy_scan_method_shadows(cls):
    """The seed scan: ``dir()`` + ``getattr_static`` per member name."""
    shadows = []
    for name in dir(cls):
        if name.startswith("__"):
            continue
        static = inspect.getattr_static(cls, name)
        if isinstance(static, FunctionType):
            shadows.append(
                MethodShadow(
                    cls=cls,
                    name=name,
                    original=static,
                    inherited=name not in cls.__dict__,
                )
            )
    return tuple(shadows)


def _scan_fixture():
    """A small hierarchy: bases with 14 members, subclasses adding 6 more."""
    classes = []
    for i in range(6):
        namespace = {f"method_{j}": (lambda self, _j=j: _j) for j in range(12)}
        namespace["rate"] = 1.5
        namespace["label"] = f"base{i}"
        base = type(f"ScanBase{i}", (), namespace)
        sub_namespace = {f"extra_{j}": (lambda self, _j=j: _j) for j in range(6)}
        sub = type(f"ScanSub{i}", (base,), sub_namespace)
        classes.extend([base, sub])
    return classes


def bench_shadow_scan(*, legacy):
    """One full scan sweep over the fixture hierarchy, in µs.

    ``legacy`` reproduces the seed scan (one ``dir()`` walk plus one
    ``getattr_static`` MRO search *per member name*); the current scan is
    a single vectorized pass over each MRO ``__dict__``.
    """
    classes = _scan_fixture()
    scan = _legacy_scan_method_shadows if legacy else _scan_method_shadows

    def sweep():
        for cls in classes:
            scan(cls)

    best = min(timeit.repeat(sweep, repeat=5, number=200))
    return best / 200 * 1e6


def _batch_fixture():
    """8 aspects over 16 classes (each aspect matches one class)."""
    classes = []
    aspects = []
    for i in range(8):
        namespace = {f"method_{j}": (lambda self, _j=j: _j) for j in range(12)}
        cls = type(f"Widget{i}", (), namespace)
        classes.append(cls)

        class WidgetAspect(Aspect):
            @before(f"execution(Widget{i}.method_0)")
            def noop(self, jp):
                pass

        aspects.append(WidgetAspect())
    # Pad with advice-free classes the aspects never touch (pure scan cost).
    for i in range(8, 16):
        namespace = {f"method_{j}": (lambda self, _j=j: _j) for j in range(12)}
        classes.append(type(f"Widget{i}", (), namespace))
    return classes, aspects


def bench_deploy_batch(*, mode):
    """Batch-deployment cost under three planning strategies.

    ``rescan``
        the seed behaviour: every deploy rescans every class with the
        seed's ``dir()`` + ``getattr_static`` scan.
    ``indexed``
        PR 1: sequential deploys over the runtime's memoized shadow index.
    ``single_scan``
        PR 2: the batch planner — one scan per class for the whole batch,
        woven classes' scans derived instead of rescanned.
    """
    import repro.aop.weaver as weaver_mod

    classes, aspects = _batch_fixture()

    def run():
        weaver = WeaverRuntime()
        if mode == "single_scan":
            weaver.deploy_all(aspects, classes)
        else:
            for aspect in aspects:
                if mode == "rescan":
                    # the seed rescanned every deploy
                    weaver.shadow_index.clear()
                weaver.deploy(aspect, classes)
        weaver.undeploy_all()

    real_scan = weaver_mod._scan_method_shadows
    if mode == "rescan":
        # The seed did not just rescan — it rescanned with the slow
        # per-name scan.  Keep the baseline faithful to it so the ratio
        # still reads "current planner vs seed planner".
        weaver_mod._scan_method_shadows = _legacy_scan_method_shadows
    try:
        best = min(timeit.repeat(run, repeat=3, number=20))
    finally:
        weaver_mod._scan_method_shadows = real_scan
    return best / 20 * 1e6  # µs per batch


def main():
    # The monitor tier auto-engages on 3.12+ for exactly the shape the
    # wrapper-tier series deploy (observation-only, residue-free,
    # unscoped).  Pin it off so every wrapper series — including the
    # LegacyWeaver baseline, which inherits the deploy-time tier planner —
    # keeps pricing wrappers; the monitor series opt in via monitor_mode.
    os.environ["REPRO_AOP_MONITOR"] = "0"
    Node = fresh_node_class()
    node = Node()
    results = {
        "call_plain_ns": time_call(node.render, number=200_000),
        "call_static_before_legacy_ns": bench_advised_call(
            LegacyWeaver, lambda cls: BeforeAspect()
        ),
        "call_static_before_compiled_ns": bench_advised_call(
            WeaverRuntime, lambda cls: BeforeAspect()
        ),
        "call_static_before_codegen_ns": bench_advised_call(
            WeaverRuntime, lambda cls: BeforeAspect(), codegen=True
        ),
        "call_static_around_legacy_ns": bench_advised_call(
            LegacyWeaver, lambda cls: AroundAspect()
        ),
        "call_static_around_compiled_ns": bench_advised_call(
            WeaverRuntime, lambda cls: AroundAspect()
        ),
        "call_static_around_codegen_ns": bench_advised_call(
            WeaverRuntime, lambda cls: AroundAspect(), codegen=True
        ),
        "call_dynamic_target_legacy_ns": bench_advised_call(
            LegacyWeaver, TargetedAspect
        ),
        "call_dynamic_target_compiled_ns": bench_advised_call(
            WeaverRuntime, TargetedAspect
        ),
        "call_dynamic_target_codegen_ns": bench_advised_call(
            WeaverRuntime, TargetedAspect, codegen=True
        ),
        "call_stacked_before_legacy_ns": bench_stacked_advised_call(LegacyWeaver),
        "call_stacked_before_codegen_ns": bench_stacked_advised_call(
            WeaverRuntime, codegen=True
        ),
        "call_generator_before_legacy_ns": bench_advised_call(
            LegacyWeaver, lambda cls: GeneratorAspect()
        ),
        "call_generator_before_compiled_ns": bench_advised_call(
            WeaverRuntime, lambda cls: GeneratorAspect()
        ),
        "call_generator_before_ns": bench_advised_call(
            WeaverRuntime, lambda cls: GeneratorAspect(), codegen=True
        ),
        "call_module_func_before_legacy_ns": bench_module_func_call(legacy=True),
        "call_module_func_before_ns": bench_module_func_call(legacy=False),
        "call_instance_scoped_before_ns": bench_instance_scoped_call(scoped=True),
        "call_unscoped_passthrough_ns": bench_instance_scoped_call(scoped=False),
        "field_get_generic_ns": bench_field_access(codegen=False, write=False),
        "field_get_codegen_ns": bench_field_access(codegen=True, write=False),
        "field_set_generic_ns": bench_field_access(codegen=False, write=True),
        "field_set_codegen_ns": bench_field_access(codegen=True, write=True),
        "serve_page_legacy_ns": bench_serve_page(legacy=True),
        "serve_page_ns": bench_serve_page(legacy=False),
        "serve_page_cached_ns": bench_serve_page(legacy=False, cached=True),
        "joinpoint_dataclass_ns": bench_joinpoint_construction(pooled=False),
        "joinpoint_pooled_ns": bench_joinpoint_construction(pooled=True),
        "shadow_scan_legacy_us": bench_shadow_scan(legacy=True),
        "shadow_scan_us": bench_shadow_scan(legacy=False),
        "deploy_batch_rescan_us": bench_deploy_batch(mode="rescan"),
        "deploy_batch_indexed_us": bench_deploy_batch(mode="indexed"),
        "deploy_batch_single_scan_us": bench_deploy_batch(mode="single_scan"),
    }
    if monitor_supported():
        results["call_static_before_monitor_ns"] = bench_monitor_call(advised=True)
        results["call_unscoped_passthrough_monitor_ns"] = bench_monitor_call(
            advised=False
        )
    serve_async_p50, serve_async_p99 = bench_serve_async()
    results["serve_async_p50_us"] = serve_async_p50
    results["serve_async_p99_us"] = serve_async_p99
    speedups = {
        "static_before": results["call_static_before_legacy_ns"]
        / results["call_static_before_compiled_ns"],
        "static_before_codegen": results["call_static_before_legacy_ns"]
        / results["call_static_before_codegen_ns"],
        "static_around": results["call_static_around_legacy_ns"]
        / results["call_static_around_compiled_ns"],
        "static_around_codegen": results["call_static_around_legacy_ns"]
        / results["call_static_around_codegen_ns"],
        "dynamic_target": results["call_dynamic_target_legacy_ns"]
        / results["call_dynamic_target_compiled_ns"],
        "dynamic_target_codegen": results["call_dynamic_target_legacy_ns"]
        / results["call_dynamic_target_codegen_ns"],
        "stacked_before_codegen": results["call_stacked_before_legacy_ns"]
        / results["call_stacked_before_codegen_ns"],
        # Generator advice occupies an around slot; the legacy baseline
        # drives the same send/throw protocol through the seed's per-call
        # chain, so the ratios price deploy-time compilation of the drive
        # loop (and, for codegen, its inlining into the wrapper source).
        "generator_before": results["call_generator_before_legacy_ns"]
        / results["call_generator_before_compiled_ns"],
        "generator_before_codegen": results["call_generator_before_legacy_ns"]
        / results["call_generator_before_ns"],
        "module_func_before_codegen": results["call_module_func_before_legacy_ns"]
        / results["call_module_func_before_ns"],
        # The seed had no instance scoping: getting per-instance advice
        # meant weaving the class, so the class-wide legacy advised call
        # is the honest baseline for the scoped chain.
        "instance_scoped_before": results["call_static_before_legacy_ns"]
        / results["call_instance_scoped_before_ns"],
        # < 1 by design: this series prices the dispatch *overhead* an
        # unscoped instance pays (plain-call time over passthrough time);
        # committing it gates the passthrough against regressions.
        "instance_unscoped_passthrough": results["call_plain_ns"]
        / results["call_unscoped_passthrough_ns"],
        # The field and scan baselines are the *generic/seed* in-process
        # paths (the pre-codegen descriptor chain, the dir()+getattr_static
        # scan), so these ratios self-normalize like the rest.
        "field_get_codegen": results["field_get_generic_ns"]
        / results["field_get_codegen_ns"],
        "field_set_codegen": results["field_set_generic_ns"]
        / results["field_set_codegen_ns"],
        "shadow_scan": results["shadow_scan_legacy_us"] / results["shadow_scan_us"],
        "joinpoint_pool": results["joinpoint_dataclass_ns"]
        / results["joinpoint_pooled_ns"],
        "deploy_batch": results["deploy_batch_rescan_us"]
        / results["deploy_batch_indexed_us"],
        "deploy_batch_single_scan": results["deploy_batch_rescan_us"]
        / results["deploy_batch_single_scan_us"],
        # Both sides render and serialize the same page, so the ratio
        # prices the multi-audience/session machinery per HTTP request.
        # Committed (and therefore gated by check_regression) now that
        # the request path has settled; expect ~1.0 — instance-scoped
        # serving should stay render-dominated, not dispatch-dominated.
        "serve_page": results["serve_page_legacy_ns"] / results["serve_page_ns"],
        # The weave-epoch skeleton cache against the uncached request
        # path on a warm repeat: an epoch read + LRU hit + trail splice
        # instead of a full render+serialize.  Target: >= 50x.
        "serve_page_cached": results["serve_page_ns"]
        / results["serve_page_cached_ns"],
    }
    if monitor_supported():
        # Committed as measured, including the negative half of the
        # result: the advised monitor-tier call is *slower* than codegen
        # wrappers (Python-level PY_START/PY_RETURN callbacks floor at
        # ~2-5x a plain call before any advice runs — see the aop README).
        # The series that vindicates the tier is the passthrough: an
        # unadvised member of a monitored class costs a true plain call,
        # because the monitor tier installs nothing on the class.
        speedups["static_before_monitor"] = (
            results["call_static_before_legacy_ns"]
            / results["call_static_before_monitor_ns"]
        )
        speedups["unscoped_passthrough_monitor"] = (
            results["call_plain_ns"]
            / results["call_unscoped_passthrough_monitor_ns"]
        )
    codegen_over_compiled = {
        "static_before": results["call_static_before_compiled_ns"]
        / results["call_static_before_codegen_ns"],
        "static_around": results["call_static_around_compiled_ns"]
        / results["call_static_around_codegen_ns"],
        "dynamic_target": results["call_dynamic_target_compiled_ns"]
        / results["call_dynamic_target_codegen_ns"],
    }
    payload = {
        "benchmark": "weaver_hotpath",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results_ns": {k: round(v, 1) for k, v in results.items()},
        "speedup_vs_seed": {k: round(v, 2) for k, v in speedups.items()},
        "codegen_over_compiled": {
            k: round(v, 2) for k, v in codegen_over_compiled.items()
        },
        # Interpreter floors per speedup series: check_regression treats a
        # committed series as informational (not "disappeared") when the
        # gating run's interpreter is below the floor.  Recorded on every
        # run — including 3.11 runs that cannot measure the series — so
        # whichever payload is the baseline carries the map.
        "requires_python": {
            "static_before_monitor": "3.12",
            "unscoped_passthrough_monitor": "3.12",
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    failed = False
    if speedups["static_before"] < 2.0:
        print(
            "WARNING: statically-matched advised calls are "
            f"only {speedups['static_before']:.2f}x the seed weaver",
            file=sys.stderr,
        )
        failed = True
    if codegen_over_compiled["static_before"] < 1.5:
        print(
            "WARNING: codegen static-before is only "
            f"{codegen_over_compiled['static_before']:.2f}x the compiled tier "
            "(target: >= 1.5x)",
            file=sys.stderr,
        )
        failed = True
    for series in ("field_get_codegen", "field_set_codegen"):
        if speedups[series] < 2.0:
            print(
                f"WARNING: {series} is only {speedups[series]:.2f}x the "
                "generic-chain field path (target: >= 2x)",
                file=sys.stderr,
            )
            failed = True
    generator_ratio = (
        results["call_generator_before_ns"] / results["call_static_before_codegen_ns"]
    )
    if generator_ratio > 2.0:
        print(
            "WARNING: a generator-advised static call is "
            f"{generator_ratio:.2f}x the codegen static-before call "
            "(target: <= 2x — the drive loop is inlined, not chained)",
            file=sys.stderr,
        )
        failed = True
    passthrough_ratio = (
        results["call_unscoped_passthrough_ns"] / results["call_plain_ns"]
    )
    if passthrough_ratio > 3.0:
        print(
            "WARNING: unscoped-instance passthrough is "
            f"{passthrough_ratio:.2f}x a plain call (target: <= 3x)",
            file=sys.stderr,
        )
        failed = True
    if monitor_supported():
        monitor_passthrough_ratio = (
            results["call_unscoped_passthrough_monitor_ns"]
            / results["call_plain_ns"]
        )
        if monitor_passthrough_ratio > 2.0:
            print(
                "WARNING: an unadvised member of a monitored class costs "
                f"{monitor_passthrough_ratio:.2f}x a plain call (target: "
                "~1x — the monitor tier installs nothing on the class, so "
                "its passthrough must be residue-free)",
                file=sys.stderr,
            )
            failed = True
    if speedups["serve_page_cached"] < 50.0:
        print(
            "WARNING: a warm cached page request is only "
            f"{speedups['serve_page_cached']:.1f}x the uncached request "
            "path (target: >= 50x — a hit must cost an epoch read, an LRU "
            "lookup and a trail splice, never a render)",
            file=sys.stderr,
        )
        failed = True
    if speedups["serve_page"] < 0.67:
        # check_regression gates the committed ratio; this local warning
        # catches an absolute collapse of the request path even when no
        # baseline is at hand.
        print(
            "WARNING: the HTTP request path is "
            f"{1 / speedups['serve_page']:.2f}x the seed serving "
            "path (target: <= 1.5x — scoped dispatch and the session tier "
            "should stay render-dominated)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
