"""Weaver hot path: compiled advice chains vs. the pre-refactor per-call path.

The seed weaver re-partitioned advice by kind and re-evaluated every
pointcut's dynamic residue on *every* advised call, and pushed a join point
frame whether or not anything could observe it.  The compiled weaver does
the partitioning once at deployment time and skips stack bookkeeping for
statically-matched shadows.  This harness prices both, using a faithful
reproduction of the seed implementation as the baseline, and writes the
numbers to ``BENCH_weaver_hotpath.json`` at the repo root so successive
PRs can track the trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_weaver_hotpath.py
"""

from __future__ import annotations

import functools
import json
import platform
import sys
import timeit
from pathlib import Path

from repro.aop import Aspect, AdviceKind, Weaver, around, before
from repro.aop.joinpoint import JoinPoint, JoinPointKind, ProceedingJoinPoint, joinpoint_frame
from repro.aop.weaver import shadow_index

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_weaver_hotpath.json"


# -- the seed (pre-refactor) implementation, reproduced as the baseline -------


def _legacy_wrap_around(advice, jp, inner):
    def runner(*args, **kwargs):
        pjp = ProceedingJoinPoint(jp, inner)
        pjp.args = args or jp.args
        pjp.kwargs = kwargs or jp.kwargs
        return advice.invoke(pjp)

    return runner


def _legacy_run_advice_chain(advice, jp, proceed):
    befores = [a for a in advice if a.kind is AdviceKind.BEFORE]
    arounds = [a for a in advice if a.kind is AdviceKind.AROUND]
    returnings = [a for a in advice if a.kind is AdviceKind.AFTER_RETURNING]
    throwings = [a for a in advice if a.kind is AdviceKind.AFTER_THROWING]
    finallys = [a for a in advice if a.kind is AdviceKind.AFTER]

    chain = proceed
    for around_advice in reversed(arounds):
        chain = _legacy_wrap_around(around_advice, jp, chain)

    for item in befores:
        item.invoke(jp)
    try:
        result = chain(*jp.args, **jp.kwargs)
    except Exception as exc:
        jp.result = exc
        for item in reversed(throwings):
            item.invoke(jp)
        for item in reversed(finallys):
            item.invoke(jp)
        raise
    jp.result = result
    for item in reversed(returnings):
        item.invoke(jp)
    for item in reversed(finallys):
        item.invoke(jp)
    return result


class LegacyWeaver(Weaver):
    """The seed weaver: per-call partitioning, filtering and frame pushes."""

    @staticmethod
    def _make_method_wrapper(shadow, advice, *, track_frames=True):
        original = shadow.original

        @functools.wraps(original)
        def wrapper(self, *args, **kwargs):
            jp = JoinPoint(
                JoinPointKind.METHOD_EXECUTION,
                self,
                type(self),
                shadow.name,
                args,
                kwargs,
            )
            with joinpoint_frame(jp):
                applicable = [a for a in advice if a.pointcut.matches_dynamic(jp)]
                if not applicable:
                    return original(self, *args, **kwargs)

                def proceed(*call_args, **call_kwargs):
                    return original(self, *call_args, **call_kwargs)

                return _legacy_run_advice_chain(applicable, jp, proceed)

        wrapper.__woven__ = True
        wrapper.__woven_original__ = original
        return wrapper


# -- workloads ----------------------------------------------------------------


def fresh_node_class():
    class Node:
        def render(self):
            return 42

    return Node


class BeforeAspect(Aspect):
    def __init__(self):
        self.count = 0

    @before("execution(Node.render)")
    def note(self, jp):
        self.count += 1


class AroundAspect(Aspect):
    @around("execution(Node.render)")
    def wrap(self, jp):
        return jp.proceed()


class TargetedAspect(Aspect):
    """Carries a dynamic residue so both weavers take the filtering path."""

    def __init__(self, node_cls):
        from repro.aop import execution, target

        self._pointcut = execution("Node.render") & target(node_cls)

    def advice(self):
        from repro.aop import Advice

        return [
            Advice(
                kind=AdviceKind.BEFORE,
                pointcut=self._pointcut,
                function=lambda jp: None,
            )
        ]

    def validate(self):
        pass


def time_call(fn, *, repeat=5, number=50_000):
    """Best-of-N per-call time in nanoseconds."""
    best = min(timeit.repeat(fn, repeat=repeat, number=number))
    return best / number * 1e9


def bench_advised_call(weaver_cls, aspect_factory):
    Node = fresh_node_class()
    weaver = weaver_cls()
    aspect = aspect_factory(Node)
    deployment = weaver.deploy(aspect, [Node])
    node = Node()
    try:
        return time_call(node.render)
    finally:
        weaver.undeploy(deployment)


def bench_deploy_batch(*, use_index):
    """Deploy 8 aspects over 16 classes (each aspect matches one class)."""

    classes = []
    aspects = []
    for i in range(8):
        namespace = {
            f"method_{j}": (lambda self, _j=j: _j) for j in range(12)
        }
        cls = type(f"Widget{i}", (), namespace)
        classes.append(cls)

        class WidgetAspect(Aspect):
            @before(f"execution(Widget{i}.method_0)")
            def noop(self, jp):
                pass

        aspects.append(WidgetAspect())
    # Pad with advice-free classes the aspects never touch (pure scan cost).
    for i in range(8, 16):
        namespace = {f"method_{j}": (lambda self, _j=j: _j) for j in range(12)}
        classes.append(type(f"Widget{i}", (), namespace))

    def run():
        weaver = Weaver()
        deployments = []
        for aspect in aspects:
            if not use_index:
                shadow_index.clear()  # the seed rescanned every deploy
            deployments.append(weaver.deploy(aspect, classes))
        weaver.undeploy_all()

    shadow_index.clear()
    best = min(timeit.repeat(run, repeat=3, number=20))
    return best / 20 * 1e6  # µs per batch


def main():
    Node = fresh_node_class()
    node = Node()
    results = {
        "call_plain_ns": time_call(node.render, number=200_000),
        "call_static_before_legacy_ns": bench_advised_call(
            LegacyWeaver, lambda cls: BeforeAspect()
        ),
        "call_static_before_compiled_ns": bench_advised_call(
            Weaver, lambda cls: BeforeAspect()
        ),
        "call_static_around_legacy_ns": bench_advised_call(
            LegacyWeaver, lambda cls: AroundAspect()
        ),
        "call_static_around_compiled_ns": bench_advised_call(
            Weaver, lambda cls: AroundAspect()
        ),
        "call_dynamic_target_legacy_ns": bench_advised_call(
            LegacyWeaver, TargetedAspect
        ),
        "call_dynamic_target_compiled_ns": bench_advised_call(
            Weaver, TargetedAspect
        ),
        "deploy_batch_rescan_us": bench_deploy_batch(use_index=False),
        "deploy_batch_indexed_us": bench_deploy_batch(use_index=True),
    }
    speedups = {
        "static_before": results["call_static_before_legacy_ns"]
        / results["call_static_before_compiled_ns"],
        "static_around": results["call_static_around_legacy_ns"]
        / results["call_static_around_compiled_ns"],
        "dynamic_target": results["call_dynamic_target_legacy_ns"]
        / results["call_dynamic_target_compiled_ns"],
        "deploy_batch": results["deploy_batch_rescan_us"]
        / results["deploy_batch_indexed_us"],
    }
    payload = {
        "benchmark": "weaver_hotpath",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results_ns": {k: round(v, 1) for k, v in results.items()},
        "speedup_vs_seed": {k: round(v, 2) for k, v in speedups.items()},
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if speedups["static_before"] < 2.0:
        print(
            "WARNING: statically-matched advised calls are "
            f"only {speedups['static_before']:.2f}x the seed weaver",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
