"""T-S — derived table: scattering and tangling of the navigation concern.

The paper asserts navigation is "scattered all over the program code";
this table measures it.  Expected shape: tangled CDC == every page and
tangling ratio 1.0; the separated architectures confine the concern to one
pure-navigation artifact.
"""

from repro.baselines import TangledMuseumSite
from repro.core import build_woven_site, default_museum_spec, export_museum_space
from repro.metrics import measure_scattering
from repro.xmlcore import serialize


def tangled_build(fixture):
    return {
        p.path: p.html for p in TangledMuseumSite(fixture, "index").build().values()
    }


def xlink_artifacts(fixture):
    space = export_museum_space(fixture, default_museum_spec("index"))
    return {uri: serialize(space.document(uri), indent="  ") for uri in space.uris()}


def aspect_artifacts(fixture):
    """What the aspect developer authors: spec + the built pages are derived."""
    return {"navigation.spec": default_museum_spec("index").to_text()}


def test_tangled_scattering_measured(benchmark, paper_fixture):
    report = benchmark(lambda: measure_scattering(tangled_build(paper_fixture)))
    assert report.cdc == report.total_files       # scattered everywhere
    assert report.tangling_ratio == 1.0           # every file mixes concerns


def test_xlink_scattering_measured(benchmark, paper_fixture):
    report = benchmark(lambda: measure_scattering(xlink_artifacts(paper_fixture)))
    assert report.cdc == 1                        # links.xml only
    assert report.navigation_only_files() == ["links.xml"]


def test_aspect_scattering_measured(benchmark, paper_fixture):
    report = benchmark(lambda: measure_scattering(aspect_artifacts(paper_fixture)))
    assert report.cdc == 1
    assert report.tangled_files == 0


def test_woven_output_is_tangled_but_derived(paper_fixture):
    """The *built* pages mix concerns under every architecture — the
    difference is that separated builds derive them from clean sources."""
    site = build_woven_site(paper_fixture, default_museum_spec("index"))
    report = measure_scattering(site.as_text())
    assert report.tangling_ratio > 0.5
